package model

import (
	"context"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/units"
)

// The paper closes by noting the model "can be extended in a
// straightforward way to model additional memory architectures such as
// multi-socket" (§VIII). This file is that extension: a symmetric
// multi-socket platform where a fraction of each socket's misses resolve
// to a remote socket over an interconnect with its own latency adder and
// bandwidth ceiling.
//
// The construction mirrors Eq. 5: the miss population splits into a
// local share (socket-local channels, local compulsory latency) and a
// remote share (remote channels plus the interconnect hop), each with a
// self-consistent loaded latency. Remote traffic loads BOTH the remote
// socket's channels (symmetrically, every socket serves its peers'
// remote accesses) and the interconnect links.

// NUMAPlatform describes a symmetric multi-socket machine.
type NUMAPlatform struct {
	Name    string
	Sockets int
	// ThreadsPerSocket and CoresPerSocket describe one socket.
	ThreadsPerSocket int
	CoresPerSocket   int
	CoreSpeed        units.Hertz
	LineSize         units.Bytes

	// LocalCompulsory is the unloaded latency to socket-local DRAM;
	// RemoteAdder is the extra unloaded latency of a remote hop (QPI-era
	// parts measured ~50–70 ns).
	LocalCompulsory units.Duration
	RemoteAdder     units.Duration

	// SocketPeakBW is one socket's deliverable DRAM bandwidth;
	// LinkPeakBW is the interconnect bandwidth available to one socket's
	// remote traffic.
	SocketPeakBW units.BytesPerSecond
	LinkPeakBW   units.BytesPerSecond

	// RemoteFraction is the fraction of LLC misses served by a remote
	// socket (0 = perfect NUMA locality, 1−1/Sockets = uniform
	// interleaving).
	RemoteFraction float64

	// Queue shapes the queuing delay of both DRAM and link (utilization
	// normalized to each resource's own peak).
	Queue queueing.Curve
}

// Validate reports configuration errors. Failures wrap
// ErrInvalidPlatform for errors.Is classification.
func (np NUMAPlatform) Validate() error {
	switch {
	case np.Sockets < 1:
		return fmt.Errorf("%w: NUMAPlatform.Sockets must be ≥1", ErrInvalidPlatform)
	case np.ThreadsPerSocket <= 0 || np.CoresPerSocket <= 0:
		return fmt.Errorf("%w: NUMAPlatform thread/core counts must be positive", ErrInvalidPlatform)
	case np.CoreSpeed <= 0 || np.LineSize <= 0:
		return fmt.Errorf("%w: NUMAPlatform core parameters must be positive", ErrInvalidPlatform)
	case np.LocalCompulsory <= 0 || np.RemoteAdder < 0:
		return fmt.Errorf("%w: NUMAPlatform latencies must be positive", ErrInvalidPlatform)
	case np.SocketPeakBW <= 0 || np.LinkPeakBW <= 0:
		return fmt.Errorf("%w: NUMAPlatform bandwidths must be positive", ErrInvalidPlatform)
	case np.RemoteFraction < 0 || np.RemoteFraction > 1:
		return fmt.Errorf("%w: RemoteFraction must be in [0,1]", ErrInvalidPlatform)
	case np.Queue == nil:
		return fmt.Errorf("%w: NUMAPlatform.Queue must be set", ErrInvalidPlatform)
	}
	if np.Sockets == 1 && np.RemoteFraction > 0 {
		return fmt.Errorf("%w: single socket cannot have remote accesses", ErrInvalidPlatform)
	}
	return nil
}

// UniformInterleave returns the remote fraction of an address space
// interleaved evenly across all sockets: (Sockets−1)/Sockets.
func (np NUMAPlatform) UniformInterleave() float64 {
	if np.Sockets <= 1 {
		return 0
	}
	return float64(np.Sockets-1) / float64(np.Sockets)
}

// WithRemoteFraction returns a copy with a different locality mix.
func (np NUMAPlatform) WithRemoteFraction(f float64) NUMAPlatform {
	np.RemoteFraction = f
	np.Name = fmt.Sprintf("%s@remote=%.0f%%", np.Name, f*100)
	return np
}

// NUMAOperatingPoint is the per-socket stable solution (sockets are
// symmetric, so one socket describes the machine).
type NUMAOperatingPoint struct {
	CPI            float64
	LocalMP        units.Duration       // loaded latency of local misses
	RemoteMP       units.Duration       // loaded latency of remote misses (incl. hop)
	EffectiveMP    units.Duration       // traffic-weighted miss penalty
	DRAMDemand     units.BytesPerSecond // per-socket DRAM traffic (local + inbound remote)
	LinkDemand     units.BytesPerSecond // per-socket interconnect traffic
	DRAMUtil       float64
	LinkUtil       float64
	BandwidthBound bool
}

// EvaluateNUMA finds the stable operating point of workload class p on a
// symmetric NUMA platform. It is the local/remote adapter over
// EvaluateTopology (the scalar fixed point is the per-thread CPI, found
// by the shared bisection kernel as in EvaluateTiered), bit-identical
// to the pre-topology evaluator. As with Evaluate, a solve.Recorder
// planted in ctx observes the solver telemetry.
func EvaluateNUMA(ctx context.Context, p Params, np NUMAPlatform) (NUMAOperatingPoint, error) {
	if err := p.Validate(); err != nil {
		return NUMAOperatingPoint{}, err
	}
	if err := np.Validate(); err != nil {
		return NUMAOperatingPoint{}, err
	}
	pt, err := EvaluateTopology(ctx, p, np.Topology())
	if err != nil {
		return NUMAOperatingPoint{}, err
	}
	return NUMAOperatingPoint{
		CPI:            pt.CPI,
		LocalMP:        pt.Tiers[0].MissPenalty,
		RemoteMP:       pt.Tiers[1].MissPenalty,
		EffectiveMP:    pt.EffectiveMP,
		DRAMDemand:     pt.Tiers[0].Demand,
		LinkDemand:     pt.Tiers[1].Demand,
		DRAMUtil:       pt.Tiers[0].Utilization,
		LinkUtil:       pt.Tiers[1].Utilization,
		BandwidthBound: pt.BandwidthBound,
	}, nil
}

// DualSocketBaseline builds the two-socket version of the paper's
// baseline: each socket is the §VI.C.2 single-socket platform, with a
// QPI-era interconnect (60 ns hop, 25 GB/s per direction per socket).
func DualSocketBaseline(curve queueing.Curve) NUMAPlatform {
	single := BaselinePlatform(curve)
	return NUMAPlatform{
		Name:             "dual-socket-baseline",
		Sockets:          2,
		ThreadsPerSocket: single.Threads,
		CoresPerSocket:   single.Cores,
		CoreSpeed:        single.CoreSpeed,
		LineSize:         single.LineSize,
		LocalCompulsory:  single.Compulsory,
		RemoteAdder:      60 * units.Nanosecond,
		SocketPeakBW:     single.PeakBW,
		LinkPeakBW:       units.GBpsOf(25),
		RemoteFraction:   0,
		Queue:            curve,
	}
}
