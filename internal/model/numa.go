package model

import (
	"context"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/solve"
	"repro/internal/units"
)

// The paper closes by noting the model "can be extended in a
// straightforward way to model additional memory architectures such as
// multi-socket" (§VIII). This file is that extension: a symmetric
// multi-socket platform where a fraction of each socket's misses resolve
// to a remote socket over an interconnect with its own latency adder and
// bandwidth ceiling.
//
// The construction mirrors Eq. 5: the miss population splits into a
// local share (socket-local channels, local compulsory latency) and a
// remote share (remote channels plus the interconnect hop), each with a
// self-consistent loaded latency. Remote traffic loads BOTH the remote
// socket's channels (symmetrically, every socket serves its peers'
// remote accesses) and the interconnect links.

// NUMAPlatform describes a symmetric multi-socket machine.
type NUMAPlatform struct {
	Name    string
	Sockets int
	// ThreadsPerSocket and CoresPerSocket describe one socket.
	ThreadsPerSocket int
	CoresPerSocket   int
	CoreSpeed        units.Hertz
	LineSize         units.Bytes

	// LocalCompulsory is the unloaded latency to socket-local DRAM;
	// RemoteAdder is the extra unloaded latency of a remote hop (QPI-era
	// parts measured ~50–70 ns).
	LocalCompulsory units.Duration
	RemoteAdder     units.Duration

	// SocketPeakBW is one socket's deliverable DRAM bandwidth;
	// LinkPeakBW is the interconnect bandwidth available to one socket's
	// remote traffic.
	SocketPeakBW units.BytesPerSecond
	LinkPeakBW   units.BytesPerSecond

	// RemoteFraction is the fraction of LLC misses served by a remote
	// socket (0 = perfect NUMA locality, 1−1/Sockets = uniform
	// interleaving).
	RemoteFraction float64

	// Queue shapes the queuing delay of both DRAM and link (utilization
	// normalized to each resource's own peak).
	Queue queueing.Curve
}

// Validate reports configuration errors. Failures wrap
// ErrInvalidPlatform for errors.Is classification.
func (np NUMAPlatform) Validate() error {
	switch {
	case np.Sockets < 1:
		return fmt.Errorf("%w: NUMAPlatform.Sockets must be ≥1", ErrInvalidPlatform)
	case np.ThreadsPerSocket <= 0 || np.CoresPerSocket <= 0:
		return fmt.Errorf("%w: NUMAPlatform thread/core counts must be positive", ErrInvalidPlatform)
	case np.CoreSpeed <= 0 || np.LineSize <= 0:
		return fmt.Errorf("%w: NUMAPlatform core parameters must be positive", ErrInvalidPlatform)
	case np.LocalCompulsory <= 0 || np.RemoteAdder < 0:
		return fmt.Errorf("%w: NUMAPlatform latencies must be positive", ErrInvalidPlatform)
	case np.SocketPeakBW <= 0 || np.LinkPeakBW <= 0:
		return fmt.Errorf("%w: NUMAPlatform bandwidths must be positive", ErrInvalidPlatform)
	case np.RemoteFraction < 0 || np.RemoteFraction > 1:
		return fmt.Errorf("%w: RemoteFraction must be in [0,1]", ErrInvalidPlatform)
	case np.Queue == nil:
		return fmt.Errorf("%w: NUMAPlatform.Queue must be set", ErrInvalidPlatform)
	}
	if np.Sockets == 1 && np.RemoteFraction > 0 {
		return fmt.Errorf("%w: single socket cannot have remote accesses", ErrInvalidPlatform)
	}
	return nil
}

// UniformInterleave returns the remote fraction of an address space
// interleaved evenly across all sockets: (Sockets−1)/Sockets.
func (np NUMAPlatform) UniformInterleave() float64 {
	if np.Sockets <= 1 {
		return 0
	}
	return float64(np.Sockets-1) / float64(np.Sockets)
}

// WithRemoteFraction returns a copy with a different locality mix.
func (np NUMAPlatform) WithRemoteFraction(f float64) NUMAPlatform {
	np.RemoteFraction = f
	np.Name = fmt.Sprintf("%s@remote=%.0f%%", np.Name, f*100)
	return np
}

// NUMAOperatingPoint is the per-socket stable solution (sockets are
// symmetric, so one socket describes the machine).
type NUMAOperatingPoint struct {
	CPI            float64
	LocalMP        units.Duration       // loaded latency of local misses
	RemoteMP       units.Duration       // loaded latency of remote misses (incl. hop)
	EffectiveMP    units.Duration       // traffic-weighted miss penalty
	DRAMDemand     units.BytesPerSecond // per-socket DRAM traffic (local + inbound remote)
	LinkDemand     units.BytesPerSecond // per-socket interconnect traffic
	DRAMUtil       float64
	LinkUtil       float64
	BandwidthBound bool
}

// EvaluateNUMA finds the stable operating point of workload class p on a
// symmetric NUMA platform. The scalar fixed point is the per-thread CPI,
// found by the shared bisection kernel as in EvaluateTiered. As with
// Evaluate, a solve.Recorder planted in ctx observes the solver
// telemetry.
func EvaluateNUMA(ctx context.Context, p Params, np NUMAPlatform) (NUMAOperatingPoint, error) {
	if err := p.Validate(); err != nil {
		return NUMAOperatingPoint{}, err
	}
	if err := np.Validate(); err != nil {
		return NUMAOperatingPoint{}, err
	}

	dram := queueing.System{Compulsory: np.LocalCompulsory, PeakBW: np.SocketPeakBW, Curve: np.Queue}
	link := queueing.System{Compulsory: np.RemoteAdder, PeakBW: np.LinkPeakBW, Curve: np.Queue}
	rf := np.RemoteFraction

	at := func(cpi float64) (float64, NUMAOperatingPoint) {
		perSocket := p.Demand(cpi, np.CoreSpeed, np.LineSize) * units.BytesPerSecond(np.ThreadsPerSocket)
		// Symmetry: a socket's DRAM serves its own local traffic plus the
		// remote traffic other sockets direct at it — which, for a
		// symmetric mix, equals its own remote traffic.
		dramDemand := perSocket // local (1−rf) + inbound remote rf
		linkDemand := perSocket * units.BytesPerSecond(rf)

		localMP := dram.LoadedLatency(dramDemand)
		// A remote miss pays the remote socket's loaded DRAM latency plus
		// the interconnect hop (with the link's own queuing).
		remoteMP := localMP + link.LoadedLatency(linkDemand)

		eff := units.Duration((1-rf)*float64(localMP) + rf*float64(remoteMP))
		got := p.CPIEffAt(eff, np.CoreSpeed)
		return got, NUMAOperatingPoint{
			LocalMP:     localMP,
			RemoteMP:    remoteMP,
			EffectiveMP: eff,
			DRAMDemand:  dramDemand,
			LinkDemand:  linkDemand,
			DRAMUtil:    dram.Utilization(dramDemand),
			LinkUtil:    link.Utilization(linkDemand),
		}
	}

	// Bracket the fixed point between the zero-queue and max-queue CPIs.
	minMP := units.Duration((1-rf)*float64(np.LocalCompulsory) + rf*float64(np.LocalCompulsory+np.RemoteAdder))
	maxDelay := np.Queue.MaxStableDelay()
	maxMP := minMP + maxDelay + units.Duration(rf*float64(maxDelay))
	lo, hi := p.CPIEffAt(minMP, np.CoreSpeed), p.CPIEffAt(maxMP, np.CoreSpeed)

	// The scenario solves in CPI space; the per-socket state at the
	// converged CPI feeds the bandwidth limits, which use the demands the
	// solver saw (not recomputed at a clamped CPI — the DRAM and link
	// checks ask whether the operating point itself saturates).
	var state NUMAOperatingPoint
	sc := solve.Scenario{
		Name:    p.Name + "@" + np.Name,
		Unknown: "cpi",
		Lo:      lo,
		Hi:      hi,
		F: func(c float64) float64 {
			got, _ := at(c)
			return got
		},
		CPIOf: func(c float64) float64 {
			got, op := at(c)
			state = op
			return got
		},
		Limits: []solve.LimitFunc{
			// Bandwidth limits: DRAM per socket, then the link for the
			// remote share.
			func(_, _ float64) (solve.Limit, bool) {
				if float64(state.DRAMDemand) < float64(np.SocketPeakBW)*0.999 {
					return solve.Limit{}, false
				}
				bwCPI := p.BytesPerInstruction(np.LineSize) * float64(np.CoreSpeed) /
					(float64(np.SocketPeakBW) / float64(np.ThreadsPerSocket))
				return solve.Limit{Resource: "dram", CPI: bwCPI, Bound: true}, true
			},
			func(_, _ float64) (solve.Limit, bool) {
				if rf <= 0 || float64(state.LinkDemand) < float64(np.LinkPeakBW)*0.999 {
					return solve.Limit{}, false
				}
				bwCPI := p.BytesPerInstruction(np.LineSize) * rf * float64(np.CoreSpeed) /
					(float64(np.LinkPeakBW) / float64(np.ThreadsPerSocket))
				return solve.Limit{Resource: "link", CPI: bwCPI, Bound: true}, true
			},
		},
	}

	solver := solve.Solver{Options: solve.Options{Tol: 1e-9, MaxIter: 200}}
	out, err := solver.Solve(ctx, sc)
	if err != nil {
		return NUMAOperatingPoint{}, err
	}
	state.CPI = out.CPI
	state.BandwidthBound = out.Regime == solve.BandwidthLimited
	return state, nil
}

// DualSocketBaseline builds the two-socket version of the paper's
// baseline: each socket is the §VI.C.2 single-socket platform, with a
// QPI-era interconnect (60 ns hop, 25 GB/s per direction per socket).
func DualSocketBaseline(curve queueing.Curve) NUMAPlatform {
	single := BaselinePlatform(curve)
	return NUMAPlatform{
		Name:             "dual-socket-baseline",
		Sockets:          2,
		ThreadsPerSocket: single.Threads,
		CoresPerSocket:   single.Cores,
		CoreSpeed:        single.CoreSpeed,
		LineSize:         single.LineSize,
		LocalCompulsory:  single.Compulsory,
		RemoteAdder:      60 * units.Nanosecond,
		SocketPeakBW:     single.PeakBW,
		LinkPeakBW:       units.GBpsOf(25),
		RemoteFraction:   0,
		Queue:            curve,
	}
}
