package model

import (
	"math"
	"testing"

	"repro/internal/regress"
)

func TestClassMeanMatchesTable6Arithmetic(t *testing.T) {
	// The paper's Table 2 big-data rows (NITS WBR reconstructed) must
	// average to its Table 6 big-data class mean, Proximity excluded.
	members := []Params{
		{Name: "columnstore", CPICache: 0.89, BF: 0.20, MPKI: 5.6, WBR: 0.32},
		{Name: "nits", CPICache: 0.96, BF: 0.18, MPKI: 5.0, WBR: 1.80},
		{Name: "spark", CPICache: 0.90, BF: 0.25, MPKI: 6.0, WBR: 0.64},
	}
	mean, err := ClassMean("Big Data", members)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean.CPICache-0.9167) > 0.001 {
		t.Fatalf("CPI_cache mean = %v, want ≈0.917 (paper prints 0.91)", mean.CPICache)
	}
	if math.Abs(mean.BF-0.21) > 0.001 {
		t.Fatalf("BF mean = %v, want 0.21", mean.BF)
	}
	if math.Abs(mean.MPKI-5.533) > 0.001 {
		t.Fatalf("MPKI mean = %v, want ≈5.53 (paper prints 5.5)", mean.MPKI)
	}
	if math.Abs(mean.WBR-0.92) > 0.001 {
		t.Fatalf("WBR mean = %v, want 0.92 — this is what pins NITS WBR at 180%%", mean.WBR)
	}
}

func TestClassMeanEmpty(t *testing.T) {
	if _, err := ClassMean("x", nil); err == nil {
		t.Fatal("want error")
	}
}

func TestFig6Point(t *testing.T) {
	pt := Fig6Point(hpcClass(), "HPC")
	if pt.Class != "HPC" || pt.Workload != "HPC" {
		t.Fatalf("labels: %+v", pt)
	}
	if math.Abs(pt.BF-0.07) > 1e-12 {
		t.Fatalf("BF = %v", pt.BF)
	}
	if pt.RefsPerCycle <= 0 {
		t.Fatal("refs/cycle must be positive")
	}
}

func fig6TestPoints() []ClassPoint {
	return []ClassPoint{
		{Workload: "oltp", Class: "Enterprise", BF: 0.55, RefsPerCycle: 0.006},
		{Workload: "virt", Class: "Enterprise", BF: 0.45, RefsPerCycle: 0.006},
		{Workload: "jvm", Class: "Enterprise", BF: 0.30, RefsPerCycle: 0.005},
		{Workload: "web", Class: "Enterprise", BF: 0.35, RefsPerCycle: 0.005},
		{Workload: "cs", Class: "Big Data", BF: 0.20, RefsPerCycle: 0.008},
		{Workload: "nits", Class: "Big Data", BF: 0.18, RefsPerCycle: 0.015},
		{Workload: "spark", Class: "Big Data", BF: 0.25, RefsPerCycle: 0.011},
		{Workload: "bwaves", Class: "HPC", BF: 0.05, RefsPerCycle: 0.060},
		{Workload: "milc", Class: "HPC", BF: 0.06, RefsPerCycle: 0.055},
		{Workload: "soplex", Class: "HPC", BF: 0.11, RefsPerCycle: 0.037},
		{Workload: "wrf", Class: "HPC", BF: 0.06, RefsPerCycle: 0.030},
	}
}

func TestClusterRecoversPaperClasses(t *testing.T) {
	// "each workload class forms its own distinct cluster" (§VI.B).
	points := fig6TestPoints()
	clustering, err := Cluster(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	purity := ClusterPurity(points, clustering)
	if purity < 0.9 {
		t.Fatalf("purity = %v, want ≥0.9 on the paper's own geometry", purity)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(fig6TestPoints()[:2], 3); err == nil {
		t.Fatal("want error for fewer points than clusters")
	}
}

func TestClusterPurityDegenerate(t *testing.T) {
	if got := ClusterPurity(nil, regress.Clustering{}); got != 0 {
		t.Fatalf("purity of nothing = %v", got)
	}
	// Mismatched assignment length also yields 0, not a panic.
	pts := fig6TestPoints()
	if got := ClusterPurity(pts, regress.Clustering{Assignment: []int{0}}); got != 0 {
		t.Fatalf("purity with mismatched assignment = %v", got)
	}
}
