package model

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/solve"
	"repro/internal/units"
)

// Tier is one level of a multi-tier memory system (§VII): for example a
// fast DRAM cache in front of a large emerging-memory pool. Each tier has
// its own compulsory latency, deliverable bandwidth, and queuing curve.
type Tier struct {
	Name string
	// HitFraction is the fraction of LLC misses served by this tier.
	// Fractions across tiers must sum to 1.
	HitFraction float64
	Compulsory  units.Duration
	PeakBW      units.BytesPerSecond
	Queue       queueing.Curve
}

// TieredPlatform is a Platform whose memory is a hierarchy of Tiers;
// Eq. 5 replaces Eq. 1:
//
//	CPI_eff = CPI_cache + (MPI₁×MP₁ + MPI₂×MP₂ + …) × BF
type TieredPlatform struct {
	Name      string
	Threads   int
	Cores     int
	CoreSpeed units.Hertz
	LineSize  units.Bytes
	Tiers     []Tier
}

// Validate reports configuration errors. Failures wrap
// ErrInvalidPlatform for errors.Is classification.
func (tp TieredPlatform) Validate() error {
	if tp.Threads <= 0 || tp.Cores <= 0 || tp.CoreSpeed <= 0 || tp.LineSize <= 0 {
		return fmt.Errorf("%w: TieredPlatform core parameters must be positive", ErrInvalidPlatform)
	}
	if len(tp.Tiers) == 0 {
		return fmt.Errorf("%w: TieredPlatform needs at least one tier", ErrInvalidPlatform)
	}
	sum := 0.0
	for _, t := range tp.Tiers {
		if t.HitFraction < 0 || t.HitFraction > 1 {
			return fmt.Errorf("%w: tier %s: HitFraction out of [0,1]", ErrInvalidPlatform, t.Name)
		}
		if t.Compulsory <= 0 || t.PeakBW <= 0 || t.Queue == nil {
			return fmt.Errorf("%w: tier %s: incomplete configuration", ErrInvalidPlatform, t.Name)
		}
		sum += t.HitFraction
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("%w: tier hit fractions sum to %.3f, want 1", ErrInvalidPlatform, sum)
	}
	return nil
}

// TierPoint reports one tier's share of a tiered operating point.
type TierPoint struct {
	Name        string
	MissPenalty units.Duration
	Demand      units.BytesPerSecond
	Utilization float64
	Saturated   bool
}

// TieredOperatingPoint is the stable solution of Eq. 5 with per-tier
// loaded latencies.
type TieredOperatingPoint struct {
	CPI            float64
	Tiers          []TierPoint
	BandwidthBound bool
	Iterations     int
}

// EvaluateTiered finds the Eq. 5 fixed point: each tier's loaded latency
// depends on its share of the traffic, which depends on CPI, which
// depends on all tiers' loaded latencies. The coupling is through the
// single scalar CPI, and the map c → Eq5(c) is decreasing in c (a slower
// core demands less bandwidth, so queues shrink), so the fixed point is
// found by the shared bisection kernel, like the single-tier solver.
// As with Evaluate, a solve.Recorder planted in ctx observes the solver
// telemetry.
func EvaluateTiered(ctx context.Context, p Params, tp TieredPlatform) (TieredOperatingPoint, error) {
	if err := p.Validate(); err != nil {
		return TieredOperatingPoint{}, err
	}
	if err := tp.Validate(); err != nil {
		return TieredOperatingPoint{}, err
	}

	systems := make([]queueing.System, len(tp.Tiers))
	for i, t := range tp.Tiers {
		systems[i] = queueing.System{Compulsory: t.Compulsory, PeakBW: t.PeakBW, Curve: t.Queue}
	}

	// eq5At evaluates Eq. 5 with each tier's loaded latency implied by
	// the demand at candidate CPI c, and reports the per-tier state.
	eq5At := func(c float64) (float64, []TierPoint) {
		demandTotal := p.Demand(c, tp.CoreSpeed, tp.LineSize) * units.BytesPerSecond(tp.Threads)
		cpi := p.CPICache
		tiers := make([]TierPoint, len(tp.Tiers))
		for i, t := range tp.Tiers {
			d := demandTotal * units.BytesPerSecond(t.HitFraction)
			mp := systems[i].LoadedLatency(d)
			cpi += p.MPI() * t.HitFraction * float64(mp.Cycles(tp.CoreSpeed)) * p.BF
			tiers[i] = TierPoint{
				Name:        t.Name,
				MissPenalty: mp,
				Demand:      d,
				Utilization: systems[i].Utilization(d),
			}
		}
		return cpi, tiers
	}

	// Bracket: CPI at zero queuing ≤ fixed point ≤ CPI at max stable
	// queuing on every tier.
	lo := p.CPICache
	for _, t := range tp.Tiers {
		lo += p.MPI() * t.HitFraction * float64(t.Compulsory.Cycles(tp.CoreSpeed)) * p.BF
	}
	hi := p.CPICache
	for i, t := range tp.Tiers {
		maxMP := t.Compulsory + systems[i].Curve.MaxStableDelay()
		hi += p.MPI() * t.HitFraction * float64(maxMP.Cycles(tp.CoreSpeed)) * p.BF
	}

	// The scenario solves in CPI space; the converged CPI is Eq. 5
	// re-evaluated at the final midpoint, which also yields the per-tier
	// state the limits then annotate.
	var tiers []TierPoint
	sc := solve.Scenario{
		Name:    p.Name + "@" + tp.Name,
		Unknown: "cpi",
		Lo:      lo,
		Hi:      hi,
		F: func(c float64) float64 {
			got, _ := eq5At(c)
			return got
		},
		CPIOf: func(c float64) float64 {
			got, ts := eq5At(c)
			tiers = ts
			return got
		},
	}
	// Bandwidth-limit check per tier: a tier whose share of the traffic
	// saturates its channels bounds the whole pipeline. As in the
	// single-tier model, the final CPI is the worse of the
	// latency-limited CPI and each tier's bandwidth-limited CPI (Eq. 4
	// with BW set to the tier's available bandwidth for its share). The
	// checks chain: a clamp applied by one tier raises the CPI — and so
	// lowers the demand — the next tier's saturation test sees.
	for i, t := range tp.Tiers {
		i, t := i, t
		sc.Limits = append(sc.Limits, func(_, cpi float64) (solve.Limit, bool) {
			demandTotal := p.Demand(cpi, tp.CoreSpeed, tp.LineSize) * units.BytesPerSecond(tp.Threads)
			d := demandTotal * units.BytesPerSecond(t.HitFraction)
			if float64(d) < float64(t.PeakBW)*0.999 {
				return solve.Limit{}, false
			}
			tiers[i].Saturated = true
			share := p.BytesPerInstruction(tp.LineSize) * t.HitFraction
			bwCPI := share * float64(tp.CoreSpeed) / (float64(t.PeakBW) / float64(tp.Threads))
			return solve.Limit{Resource: t.Name, CPI: bwCPI, Bound: true}, true
		})
	}

	solver := solve.Solver{Options: solve.Options{Tol: 1e-9, MaxIter: 200}}
	out, err := solver.Solve(ctx, sc)
	if err != nil {
		return TieredOperatingPoint{Iterations: out.Iterations}, err
	}
	return TieredOperatingPoint{
		CPI:            out.CPI,
		Tiers:          tiers,
		BandwidthBound: out.Regime == solve.BandwidthLimited,
		Iterations:     out.Iterations,
	}, nil
}

// PrefetchBFImprovement estimates the §VII observation that a better
// prefetcher lowers the blocking factor: given a fraction of misses
// converted from demand to timely prefetch, the exposed fraction of the
// miss penalty scales down proportionally.
func PrefetchBFImprovement(p Params, coverage float64) (Params, error) {
	if coverage < 0 || coverage > 1 {
		return Params{}, errors.New("model: prefetch coverage must be in [0,1]")
	}
	q := p
	q.Name = fmt.Sprintf("%s+pf%.0f%%", p.Name, coverage*100)
	q.BF = p.BF * (1 - coverage)
	return q, nil
}
