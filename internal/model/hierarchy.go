package model

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/units"
)

// Tier is one level of a multi-tier memory system (§VII): for example a
// fast DRAM cache in front of a large emerging-memory pool. Each tier has
// its own compulsory latency, deliverable bandwidth, and queuing curve.
type Tier struct {
	Name string
	// HitFraction is the fraction of LLC misses served by this tier.
	// Fractions across tiers must sum to 1.
	HitFraction float64
	Compulsory  units.Duration
	PeakBW      units.BytesPerSecond
	Queue       queueing.Curve
}

// TieredPlatform is a Platform whose memory is a hierarchy of Tiers;
// Eq. 5 replaces Eq. 1:
//
//	CPI_eff = CPI_cache + (MPI₁×MP₁ + MPI₂×MP₂ + …) × BF
type TieredPlatform struct {
	Name      string
	Threads   int
	Cores     int
	CoreSpeed units.Hertz
	LineSize  units.Bytes
	Tiers     []Tier
}

// Validate reports configuration errors. Failures wrap
// ErrInvalidPlatform for errors.Is classification.
func (tp TieredPlatform) Validate() error {
	if tp.Threads <= 0 || tp.Cores <= 0 || tp.CoreSpeed <= 0 || tp.LineSize <= 0 {
		return fmt.Errorf("%w: TieredPlatform core parameters must be positive", ErrInvalidPlatform)
	}
	if len(tp.Tiers) == 0 {
		return fmt.Errorf("%w: TieredPlatform needs at least one tier", ErrInvalidPlatform)
	}
	sum := 0.0
	for _, t := range tp.Tiers {
		if t.HitFraction < 0 || t.HitFraction > 1 {
			return fmt.Errorf("%w: tier %s: HitFraction out of [0,1]", ErrInvalidPlatform, t.Name)
		}
		if t.Compulsory <= 0 || t.PeakBW <= 0 || t.Queue == nil {
			return fmt.Errorf("%w: tier %s: incomplete configuration", ErrInvalidPlatform, t.Name)
		}
		sum += t.HitFraction
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("%w: tier hit fractions sum to %.3f, want 1", ErrInvalidPlatform, sum)
	}
	return nil
}

// TierPoint reports one tier's share of a tiered operating point.
type TierPoint struct {
	Name        string
	MissPenalty units.Duration
	Demand      units.BytesPerSecond
	Utilization float64
	Saturated   bool
}

// TieredOperatingPoint is the stable solution of Eq. 5 with per-tier
// loaded latencies.
type TieredOperatingPoint struct {
	CPI            float64
	Tiers          []TierPoint
	BandwidthBound bool
	Iterations     int
}

// EvaluateTiered finds the Eq. 5 fixed point: each tier's loaded latency
// depends on its share of the traffic, which depends on CPI, which
// depends on all tiers' loaded latencies. It is the fraction-split
// adapter over EvaluateTopology (which drives the shared bisection
// kernel in CPI space), and is bit-identical to the pre-topology
// evaluator for multi-tier hierarchies. As with Evaluate, a
// solve.Recorder planted in ctx observes the solver telemetry.
func EvaluateTiered(ctx context.Context, p Params, tp TieredPlatform) (TieredOperatingPoint, error) {
	if err := p.Validate(); err != nil {
		return TieredOperatingPoint{}, err
	}
	if err := tp.Validate(); err != nil {
		return TieredOperatingPoint{}, err
	}
	pt, err := EvaluateTopology(ctx, p, tp.Topology())
	if err != nil {
		return TieredOperatingPoint{Iterations: pt.Iterations}, err
	}
	tiers := make([]TierPoint, len(pt.Tiers))
	for i, t := range pt.Tiers {
		tiers[i] = TierPoint{
			Name:        t.Name,
			MissPenalty: t.MissPenalty,
			Demand:      t.Demand,
			Utilization: t.Utilization,
			Saturated:   t.Saturated,
		}
	}
	return TieredOperatingPoint{
		CPI:            pt.CPI,
		Tiers:          tiers,
		BandwidthBound: pt.BandwidthBound,
		Iterations:     pt.Iterations,
	}, nil
}

// PrefetchBFImprovement estimates the §VII observation that a better
// prefetcher lowers the blocking factor: given a fraction of misses
// converted from demand to timely prefetch, the exposed fraction of the
// miss penalty scales down proportionally.
func PrefetchBFImprovement(p Params, coverage float64) (Params, error) {
	if coverage < 0 || coverage > 1 {
		return Params{}, errors.New("model: prefetch coverage must be in [0,1]")
	}
	q := p
	q.Name = fmt.Sprintf("%s+pf%.0f%%", p.Name, coverage*100)
	q.BF = p.BF * (1 - coverage)
	return q, nil
}
