package model

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/units"
)

// §IV.A and §IV.D of the paper: converting CPI into workload performance
// through the pathlength, and applying the model to multi-phase programs
// by instruction-weighted combination.

// Pathlength is the number of instructions per unit of work ("the
// required number of instructions to complete a unit of work", §IV.A).
// With pathlength fixed — the paper's validated assumption for its
// well-tuned workloads — CPI converts directly to throughput.
type Pathlength float64

// Throughput returns units of work per second for one hardware thread
// executing at cpi on a core at speed cps:
//
//	throughput = CPS / (PL × CPI)
func (pl Pathlength) Throughput(cpi float64, cps units.Hertz) float64 {
	if pl <= 0 || cpi <= 0 {
		return 0
	}
	return float64(cps) / (float64(pl) * cpi)
}

// RunTime returns the time to complete n units of work on one thread.
func (pl Pathlength) RunTime(n float64, cpi float64, cps units.Hertz) units.Duration {
	t := pl.Throughput(cpi, cps)
	if t == 0 {
		return 0
	}
	return units.Duration(n / t * 1e9)
}

// Phase is one program phase with its own model parameters and its
// instruction share ("a weight to each phase based on the relative
// number of instructions contained in that phase", §IV.D).
type Phase struct {
	Params Params
	// Weight is the phase's fraction of retired instructions. Weights
	// must sum to 1 across the phase list.
	Weight float64
}

// CombinePhases builds the instruction-weighted aggregate parameters for
// a multi-phase workload. CPI-like components (CPI_cache) combine
// linearly in instruction weight; rate components (MPKI, IOPI) likewise;
// BF and WBR combine weighted by their associated traffic (a phase with
// more misses contributes proportionally more of the blended blocking
// factor and writeback rate).
func CombinePhases(name string, phases []Phase) (Params, error) {
	if len(phases) == 0 {
		return Params{}, errors.New("model: CombinePhases of no phases")
	}
	var wSum float64
	for _, ph := range phases {
		if ph.Weight < 0 {
			return Params{}, fmt.Errorf("model: phase %q has negative weight", ph.Params.Name)
		}
		if err := ph.Params.Validate(); err != nil {
			return Params{}, err
		}
		wSum += ph.Weight
	}
	if wSum < 0.999 || wSum > 1.001 {
		return Params{}, fmt.Errorf("model: phase weights sum to %.3f, want 1", wSum)
	}

	var out Params
	out.Name = name
	var missW, bfAcc, wbrAcc float64
	for _, ph := range phases {
		p := ph.Params
		out.CPICache += ph.Weight * p.CPICache
		out.MPKI += ph.Weight * p.MPKI
		out.IOPI += ph.Weight * p.IOPI
		out.IOSZ += ph.Weight * p.IOSZ // approximation: weighted event size
		mw := ph.Weight * p.MPKI
		missW += mw
		bfAcc += mw * p.BF
		wbrAcc += mw * p.WBR
	}
	if missW > 0 {
		out.BF = bfAcc / missW
		out.WBR = wbrAcc / missW
	}
	return out, nil
}

// PhaseCPI evaluates each phase independently on a platform and combines
// the phase CPIs by instruction weight — the §IV.D procedure when the
// single-steady-state assumption does not hold. It returns the weighted
// CPI and the per-phase operating points. Each phase is one scenario of
// the shared solve kernel (via Evaluate), so a solve.Recorder in ctx
// observes every phase's telemetry.
func PhaseCPI(ctx context.Context, phases []Phase, pl Platform) (float64, []OperatingPoint, error) {
	if len(phases) == 0 {
		return 0, nil, errors.New("model: PhaseCPI of no phases")
	}
	var cpi float64
	var ops []OperatingPoint
	var wSum float64
	for _, ph := range phases {
		op, err := Evaluate(ctx, ph.Params, pl)
		if err != nil {
			return 0, nil, err
		}
		ops = append(ops, op)
		cpi += ph.Weight * op.CPI
		wSum += ph.Weight
	}
	if wSum < 0.999 || wSum > 1.001 {
		return 0, nil, fmt.Errorf("model: phase weights sum to %.3f, want 1", wSum)
	}
	return cpi, ops, nil
}
