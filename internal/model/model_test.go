package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func bigDataClass() Params {
	return Params{Name: "Big Data", CPICache: 0.91, BF: 0.21, MPKI: 5.5, WBR: 0.92}
}

func enterpriseClass() Params {
	return Params{Name: "Enterprise", CPICache: 1.47, BF: 0.41, MPKI: 6.7, WBR: 0.27}
}

func hpcClass() Params {
	return Params{Name: "HPC", CPICache: 0.75, BF: 0.07, MPKI: 26.7, WBR: 0.27}
}

func TestParamsValidate(t *testing.T) {
	if err := bigDataClass().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{CPICache: 0, BF: 0.2},
		{CPICache: 1, BF: -0.1},
		{CPICache: 1, BF: 1.1},
		{CPICache: 1, BF: 0.2, MPKI: -1},
		{CPICache: 1, BF: 0.2, WBR: -1},
		{CPICache: 1, BF: 0.2, IOPI: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestEq1HandComputed(t *testing.T) {
	// DESIGN.md §6: enterprise at MP = 187.5 cycles (75ns at 2.5GHz):
	// CPI_eff = 1.47 + 0.0067×187.5×0.41 ≈ 1.985.
	p := enterpriseClass()
	got := p.CPIEff(187.5)
	if math.Abs(got-1.985) > 0.002 {
		t.Fatalf("CPIEff = %v, want ≈1.985", got)
	}
	// And the time-denominated form must agree.
	got2 := p.CPIEffAt(75*units.Nanosecond, units.GHzOf(2.5))
	if math.Abs(got-got2) > 1e-12 {
		t.Fatalf("CPIEffAt disagrees: %v vs %v", got, got2)
	}
}

func TestEq4HandComputed(t *testing.T) {
	// HPC per-thread demand at CPI 1.10 ≈ 4.93 GB/s (DESIGN.md §6).
	p := hpcClass()
	got := p.Demand(1.10, units.GHzOf(2.5), 64).GBps()
	if math.Abs(got-4.93) > 0.05 {
		t.Fatalf("demand = %v GB/s, want ≈4.93", got)
	}
}

func TestEq4IOTerm(t *testing.T) {
	p := bigDataClass()
	base := p.BytesPerInstruction(64)
	p.IOPI = 0.001
	p.IOSZ = 1000
	if got := p.BytesPerInstruction(64); math.Abs(got-(base+1)) > 1e-12 {
		t.Fatalf("I/O term: %v, want %v", got, base+1)
	}
}

func TestDemandZeroCPI(t *testing.T) {
	if got := bigDataClass().Demand(0, units.GHzOf(2.5), 64); got != 0 {
		t.Fatalf("demand at CPI 0 = %v", got)
	}
}

// Property: BandwidthLimitedCPI inverts Eq. 4 — the demand at the
// bandwidth-limited CPI equals the available bandwidth.
func TestBandwidthLimitedCPIInversion(t *testing.T) {
	f := func(mpkiRaw, wbrRaw, bwRaw float64) bool {
		mpki := 0.5 + math.Abs(math.Mod(mpkiRaw, 40))
		wbr := math.Abs(math.Mod(wbrRaw, 2))
		bw := units.GBpsOf(0.5 + math.Abs(math.Mod(bwRaw, 10)))
		p := Params{Name: "x", CPICache: 1, BF: 0.2, MPKI: mpki, WBR: wbr}
		cpi, err := p.BandwidthLimitedCPI(bw, units.GHzOf(2.5), 64)
		if err != nil {
			return false
		}
		back := p.Demand(cpi, units.GHzOf(2.5), 64)
		return math.Abs(float64(back)-float64(bw)) < 1e-3*float64(bw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthLimitedCPIError(t *testing.T) {
	if _, err := bigDataClass().BandwidthLimitedCPI(0, units.GHzOf(2.5), 64); err == nil {
		t.Fatal("want error for zero bandwidth")
	}
}

func TestReferencesPerCycle(t *testing.T) {
	// Fig. 6 y axis: MPI×(1+WBR)/CPI_cache.
	p := hpcClass()
	want := 0.0267 * 1.27 / 0.75
	if got := p.ReferencesPerCycle(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("refs/cycle = %v, want %v", got, want)
	}
	zero := Params{}
	if zero.ReferencesPerCycle() != 0 {
		t.Fatal("zero CPICache must give 0")
	}
}

// Property: Eq. 1 with BF from Eq. 3 reproduces Eq. 2 exactly — the
// algebraic identity the paper's model construction rests on.
func TestEq1Eq2Eq3Consistency(t *testing.T) {
	f := func(ovRaw, mlpRaw, mpRaw float64) bool {
		overlap := math.Abs(math.Mod(ovRaw, 0.9))
		mlp := 1 + math.Abs(math.Mod(mlpRaw, 9))
		mp := units.Cycles(50 + math.Abs(math.Mod(mpRaw, 500)))
		cpiCache, mpi := 1.0, 0.006

		eq2, err := CPIEffChou(cpiCache, overlap, mpi, mp, mlp)
		if err != nil {
			return false
		}
		bf, err := BlockingFactorFromMLP(cpiCache, overlap, mpi, mp, mlp)
		if err != nil {
			return false
		}
		eq1 := cpiCache + mpi*float64(mp)*bf
		return math.Abs(eq1-eq2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEq3SecondTermVanishesWithMissPenalty(t *testing.T) {
	// §IV.B: the overlap term "will tend toward zero as miss penalty
	// increases", justifying the constant-BF assumption.
	bfAt := func(mp units.Cycles) float64 {
		bf, err := BlockingFactorFromMLP(1.0, 0.2, 0.006, mp, 4)
		if err != nil {
			t.Fatal(err)
		}
		return bf
	}
	near := math.Abs(bfAt(100) - 0.25)
	far := math.Abs(bfAt(10000) - 0.25)
	if far >= near {
		t.Fatalf("BF must approach 1/MLP as MP grows: |Δ|=%v at 100cy vs %v at 10000cy", near, far)
	}
}

func TestChouErrors(t *testing.T) {
	if _, err := CPIEffChou(1, 0.1, 0.006, 100, 0); err == nil {
		t.Fatal("want error for MLP 0")
	}
	if _, err := BlockingFactorFromMLP(1, 0.1, 0.006, 100, 0); err == nil {
		t.Fatal("want error for MLP 0")
	}
	if _, err := BlockingFactorFromMLP(1, 0.1, 0, 100, 2); err == nil {
		t.Fatal("want error for MPI 0")
	}
}
