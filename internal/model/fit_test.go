package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// syntheticPoints generates exact Eq. 1 measurements for a known
// parameter set across the paper's scaling grid.
func syntheticPoints(cpiCache, bf, mpi float64) []FitPoint {
	var pts []FitPoint
	for _, mp := range []units.Cycles{200, 250, 300, 350, 420, 480} {
		pts = append(pts, FitPoint{
			Label: "synthetic",
			CPI:   cpiCache + mpi*float64(mp)*bf,
			MPI:   mpi,
			MP:    mp,
			WBR:   0.3,
		})
	}
	return pts
}

func TestFitScalingRecoversTruth(t *testing.T) {
	fit, err := FitScaling("synthetic", syntheticPoints(0.89, 0.20, 0.0056))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Params.CPICache-0.89) > 1e-9 {
		t.Fatalf("CPI_cache = %v, want 0.89", fit.Params.CPICache)
	}
	if math.Abs(fit.Params.BF-0.20) > 1e-9 {
		t.Fatalf("BF = %v, want 0.20", fit.Params.BF)
	}
	if math.Abs(fit.Params.MPKI-5.6) > 1e-9 {
		t.Fatalf("MPKI = %v, want 5.6", fit.Params.MPKI)
	}
	if fit.R2 < 0.9999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

// Property: FitScaling recovers arbitrary plausible parameters from
// exact Eq. 1 data — the §V.A methodology is self-consistent.
func TestFitScalingRecoveryProperty(t *testing.T) {
	f := func(cRaw, bRaw, mRaw float64) bool {
		cpiCache := 0.5 + math.Abs(math.Mod(cRaw, 2))
		bf := math.Abs(math.Mod(bRaw, 0.6))
		mpi := 0.001 + math.Abs(math.Mod(mRaw, 0.03))
		fit, err := FitScaling("p", syntheticPoints(cpiCache, bf, mpi))
		if err != nil {
			return false
		}
		return math.Abs(fit.Params.CPICache-cpiCache) < 1e-6 &&
			math.Abs(fit.Params.BF-bf) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitScalingClampsNegativeBF(t *testing.T) {
	// Noise on a core-bound workload can fit a slightly negative slope;
	// the paper treats such workloads as BF ≈ 0.
	pts := []FitPoint{
		{CPI: 1.001, MPI: 0.0001, MP: 200},
		{CPI: 1.000, MPI: 0.0001, MP: 300},
		{CPI: 0.999, MPI: 0.0001, MP: 400},
	}
	fit, err := FitScaling("corebound", pts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Params.BF != 0 {
		t.Fatalf("BF = %v, want clamped to 0", fit.Params.BF)
	}
}

func TestFitScalingErrors(t *testing.T) {
	if _, err := FitScaling("x", nil); err == nil {
		t.Fatal("want error for no points")
	}
	if _, err := FitScaling("x", syntheticPoints(1, 0.2, 0.005)[:1]); err == nil {
		t.Fatal("want error for one point")
	}
}

func TestValidateTable3Style(t *testing.T) {
	fit, err := FitScaling("synthetic", syntheticPoints(0.89, 0.20, 0.0056))
	if err != nil {
		t.Fatal(err)
	}
	rows := fit.Validate()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, v := range rows {
		if math.Abs(v.Error) > 1e-9 {
			t.Fatalf("exact data must validate exactly: %+v", v)
		}
		if v.Computed != fit.Params.CPICache+fit.Params.BF*v.MPI*float64(v.MP) {
			t.Fatalf("computed mismatch: %+v", v)
		}
	}
	if fit.MaxAbsError() > 1e-9 {
		t.Fatalf("MaxAbsError = %v", fit.MaxAbsError())
	}
}

func TestValidateUsesPerPointMPI(t *testing.T) {
	// Two points with different MPIs: validation must use each point's
	// own MPI (Table 3 reports per-run values), not the fit average.
	pts := []FitPoint{
		{CPI: 1 + 0.004*200*0.2, MPI: 0.004, MP: 200},
		{CPI: 1 + 0.008*300*0.2, MPI: 0.008, MP: 300},
		{CPI: 1 + 0.006*400*0.2, MPI: 0.006, MP: 400},
	}
	fit, err := FitScaling("x", pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fit.Validate() {
		if math.Abs(v.Error) > 0.02 {
			t.Fatalf("per-point validation error too large: %+v", v)
		}
	}
}

func TestFitPointX(t *testing.T) {
	pt := FitPoint{MPI: 0.0056, MP: 400}
	if got := pt.X(); math.Abs(got-2.24) > 1e-12 {
		t.Fatalf("X = %v, want 2.24", got)
	}
}
