package model

import (
	"errors"
	"sync"

	"repro/internal/regress"
	"repro/internal/stats"
	"repro/internal/units"
)

// FitPoint is one measured run of the §V.A scaling methodology: a
// (CPI_eff, MPI×MP) pair from one core-speed/memory-speed configuration,
// with the auxiliary counters needed to complete the fitted Params.
type FitPoint struct {
	// Label identifies the configuration (e.g. "2.1GHz/DDR3-1867").
	Label string
	// CPI is the measured effective CPI.
	CPI float64
	// MPI is measured misses (demand + prefetch) per instruction.
	MPI float64
	// MP is the measured average miss penalty in core cycles at this
	// configuration's core speed.
	MP units.Cycles
	// WBR, IOPI, IOSZ complete the Eq. 4 components.
	WBR  float64
	IOPI float64
	IOSZ float64
}

// X returns the regression abscissa MPI×MP (average miss-penalty cycles
// per instruction).
func (f FitPoint) X() float64 { return f.MPI * float64(f.MP) }

// Fit is the result of estimating Eq. 1's constants from scaling runs,
// as in Fig. 3 and Tables 2–5.
type Fit struct {
	Params Params
	// R2 is the regression's coefficient of determination (the paper
	// reports e.g. R² = 0.95 for Structured Data).
	R2 float64
	// Line is the underlying regression.
	Line regress.Line
	// Points are the inputs, retained for validation tables (Table 3).
	Points []FitPoint
}

// fitScratch holds the six parallel regression columns FitScaling builds
// from its points. Neither regress.Fit nor stats.Mean retains its input,
// so the columns are true temporaries — pooled, they make the fit itself
// allocation-free apart from the retained Points copy.
type fitScratch struct {
	xs, ys, mpkis, wbrs, iopis, ioszs []float64
}

func (s *fitScratch) resize(n int) {
	for _, col := range []*[]float64{&s.xs, &s.ys, &s.mpkis, &s.wbrs, &s.iopis, &s.ioszs} {
		if cap(*col) < n {
			*col = make([]float64, n)
		}
		*col = (*col)[:n]
	}
}

var fitScratchPool = sync.Pool{New: func() any { return new(fitScratch) }}

// FitScaling estimates CPI_cache (intercept) and BF (slope) from measured
// points, per §V.A: "We estimate CPI_cache and BF in Eq. 1 by obtaining a
// fit for these data points." MPKI/WBR/IOPI/IOSZ are averaged across
// points (the paper's §V.B observes they vary little across the scaling
// runs).
func FitScaling(name string, points []FitPoint) (Fit, error) {
	if len(points) < 2 {
		return Fit{}, errors.New("model: FitScaling needs at least two points")
	}
	s := fitScratchPool.Get().(*fitScratch)
	defer fitScratchPool.Put(s)
	s.resize(len(points))
	xs, ys := s.xs, s.ys
	mpkis, wbrs, iopis, ioszs := s.mpkis, s.wbrs, s.iopis, s.ioszs
	for i, pt := range points {
		xs[i] = pt.X()
		ys[i] = pt.CPI
		mpkis[i] = pt.MPI * 1000
		wbrs[i] = pt.WBR
		iopis[i] = pt.IOPI
		ioszs[i] = pt.IOSZ
	}
	line, err := regress.Fit(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{
		Params: Params{
			Name:     name,
			CPICache: line.Intercept,
			BF:       line.Slope,
			MPKI:     stats.Mean(mpkis),
			WBR:      stats.Mean(wbrs),
			IOPI:     stats.Mean(iopis),
			IOSZ:     stats.Mean(ioszs),
		},
		R2:     line.R2,
		Line:   line,
		Points: append([]FitPoint(nil), points...),
	}
	// Clamp tiny negative artifacts of noisy near-core-bound fits (the
	// paper notes the poor Proximity correlation "is not of concern ...
	// due to the small variance in measured CPI and extremely low
	// blocking factor").
	if f.Params.BF < 0 {
		f.Params.BF = 0
	}
	return f, nil
}

// Validation is one row pair of the paper's Table 3: computed vs measured
// CPI at one configuration.
type Validation struct {
	Label    string
	MP       units.Cycles
	MPI      float64
	Computed float64
	Measured float64
	Error    float64 // relative
}

// Validate computes the Table 3 comparison for every fitted point.
func (f Fit) Validate() []Validation {
	out := make([]Validation, len(f.Points))
	for i, pt := range f.Points {
		// Use the point's own measured MPI (not the fit-average MPKI):
		// Table 3 computes CPI_cache + BF × (MPI × MP) per run.
		computed := f.Params.CPICache + f.Params.BF*pt.X()
		out[i] = Validation{
			Label:    pt.Label,
			MP:       pt.MP,
			MPI:      pt.MPI,
			Computed: computed,
			Measured: pt.CPI,
			Error:    stats.RelError(computed, pt.CPI),
		}
	}
	return out
}

// MaxAbsError returns the largest |relative error| across the validation
// rows — the paper reports ≤ ~3% for Structured Data and ≤ 2% for the
// other big-data workloads.
func (f Fit) MaxAbsError() float64 {
	max := 0.0
	for _, v := range f.Validate() {
		e := v.Error
		if e < 0 {
			e = -e
		}
		if e > max {
			max = e
		}
	}
	return max
}
