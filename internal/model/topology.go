package model

import (
	"context"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/solve"
	"repro/internal/units"
)

// This file is the unified N-tier memory evaluator. The paper's three
// platform families — the flat §VI.C baseline (Eq. 1/4), the tiered
// §VII hierarchy (Eq. 5), and the §VIII multi-socket extension — are the
// same mathematical object seen through different traffic splits: a set
// of memory tiers, each with its own unloaded latency, deliverable
// bandwidth, and queuing curve, loaded by some share of the workload's
// miss traffic. A Topology captures that object once; Evaluate,
// EvaluateTiered, and EvaluateNUMA are thin adapters over
// EvaluateTopology, and every new memory-tier scenario (die-stacked
// HBM, CXL-style far memory, sustained-vs-peak bandwidth derating) is a
// Topology value rather than a fourth evaluator.
//
// Each legacy shape keeps its historical numerics bit-for-bit: the
// degenerate one-tier topology solves in loaded-latency space exactly
// as the old single-platform evaluator did, fraction splits solve the
// Eq. 5 coupling in CPI space with per-tier terms, and the local/remote
// split applies Eq. 1 once to the traffic-weighted effective latency,
// matching the §VIII construction. The equivalence suite in
// topology_test.go pins all three to pre-refactor golden values.

// SplitPolicy selects how LLC miss traffic is distributed across the
// tiers of a Topology.
type SplitPolicy int

const (
	// SplitFractions routes each tier its configured Share of the miss
	// population — the capacity-threshold split of the §VII tiered
	// hierarchy, where a tier's share is the hit rate of the capacity in
	// front of it. Shares must sum to 1.
	SplitFractions SplitPolicy = iota
	// SplitInterleave routes traffic by fixed-ratio interleaving: each
	// tier's Share is a non-negative weight (pages striped 3:1, say),
	// normalized to fractions. This is the page-placement knob of
	// hyperscale tiering studies (Mahar et al., arxiv 2303.08396).
	SplitInterleave
	// SplitLocalRemote is the NUMA-style split: tier 0 is the local
	// memory serving ALL traffic (local plus, by symmetry, inbound
	// remote), tier 1 is an interconnect traversed serially by the
	// RemoteFraction share on top of tier 0's loaded latency.
	SplitLocalRemote
)

// String names the policy for telemetry and canonical hashing.
func (sp SplitPolicy) String() string {
	switch sp {
	case SplitFractions:
		return "fractions"
	case SplitInterleave:
		return "interleave"
	case SplitLocalRemote:
		return "local-remote"
	}
	return fmt.Sprintf("policy(%d)", int(sp))
}

// MemTier is one memory tier of a Topology: a supply resource with its
// own unloaded latency, bandwidth, and queuing behaviour.
type MemTier struct {
	Name string
	// Share is this tier's slice of the miss traffic: a fraction in
	// [0,1] under SplitFractions (summing to 1 across tiers) or a
	// non-negative interleave weight under SplitInterleave. Ignored
	// under SplitLocalRemote, where Topology.RemoteFraction splits.
	Share float64
	// Compulsory is the tier's unloaded latency. For the interconnect
	// tier of a local/remote topology it is the remote hop adder and
	// may be zero.
	Compulsory units.Duration
	// PeakBW is the tier's theoretical peak bandwidth.
	PeakBW units.BytesPerSecond
	// Efficiency derates PeakBW to the bandwidth the tier actually
	// sustains — real channels deliver ~70–90% of peak under realistic
	// access streams, and modeling against peak understates queuing
	// delay and saturates too late. In (0,1]; 0 means 1.0 (no
	// derating, the legacy evaluators' behaviour).
	Efficiency float64
	// Queue maps the tier's bandwidth utilization (normalized to
	// sustained bandwidth) to queuing delay.
	Queue queueing.Curve
}

// SustainedBW returns the bandwidth the tier delivers after the
// efficiency derating. Efficiency 0 or 1 returns PeakBW bit-exactly.
func (t MemTier) SustainedBW() units.BytesPerSecond {
	if t.Efficiency == 0 || t.Efficiency == 1 {
		return t.PeakBW
	}
	return units.BytesPerSecond(float64(t.PeakBW) * t.Efficiency)
}

// Topology is an N-tier memory system under one processor: the unified
// supply side of the model. The zero policy is SplitFractions.
type Topology struct {
	Name      string
	Threads   int
	Cores     int
	CoreSpeed units.Hertz
	LineSize  units.Bytes
	// Policy distributes miss traffic across Tiers.
	Policy SplitPolicy
	// RemoteFraction is the share of misses that traverse the
	// interconnect under SplitLocalRemote (ignored otherwise).
	RemoteFraction float64
	Tiers          []MemTier
}

// Validate reports configuration errors. Failures wrap
// ErrInvalidPlatform for errors.Is classification.
func (top Topology) Validate() error {
	if top.Threads <= 0 || top.Cores <= 0 || top.CoreSpeed <= 0 || top.LineSize <= 0 {
		return fmt.Errorf("%w: Topology core parameters must be positive", ErrInvalidPlatform)
	}
	if len(top.Tiers) == 0 {
		return fmt.Errorf("%w: Topology needs at least one tier", ErrInvalidPlatform)
	}
	for i, t := range top.Tiers {
		if t.PeakBW <= 0 || t.Queue == nil {
			return fmt.Errorf("%w: tier %d (%s): incomplete configuration", ErrInvalidPlatform, i, t.Name)
		}
		if t.Efficiency < 0 || t.Efficiency > 1 {
			return fmt.Errorf("%w: tier %d (%s): Efficiency must be in (0,1] (0 = 1.0)", ErrInvalidPlatform, i, t.Name)
		}
	}
	switch top.Policy {
	case SplitFractions:
		sum := 0.0
		for i, t := range top.Tiers {
			if t.Share < 0 || t.Share > 1 {
				return fmt.Errorf("%w: tier %d (%s): Share out of [0,1]", ErrInvalidPlatform, i, t.Name)
			}
			if t.Compulsory <= 0 {
				return fmt.Errorf("%w: tier %d (%s): Compulsory must be positive", ErrInvalidPlatform, i, t.Name)
			}
			sum += t.Share
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("%w: tier shares sum to %.3f, want 1", ErrInvalidPlatform, sum)
		}
	case SplitInterleave:
		sum := 0.0
		for i, t := range top.Tiers {
			if t.Share < 0 {
				return fmt.Errorf("%w: tier %d (%s): interleave weight must be non-negative", ErrInvalidPlatform, i, t.Name)
			}
			if t.Compulsory <= 0 {
				return fmt.Errorf("%w: tier %d (%s): Compulsory must be positive", ErrInvalidPlatform, i, t.Name)
			}
			sum += t.Share
		}
		if sum <= 0 {
			return fmt.Errorf("%w: interleave weights sum to zero", ErrInvalidPlatform)
		}
	case SplitLocalRemote:
		if len(top.Tiers) != 2 {
			return fmt.Errorf("%w: local-remote topology needs exactly 2 tiers (local memory, interconnect), got %d",
				ErrInvalidPlatform, len(top.Tiers))
		}
		if top.Tiers[0].Compulsory <= 0 {
			return fmt.Errorf("%w: local tier Compulsory must be positive", ErrInvalidPlatform)
		}
		if top.Tiers[1].Compulsory < 0 {
			return fmt.Errorf("%w: interconnect Compulsory (remote adder) must be non-negative", ErrInvalidPlatform)
		}
		if top.RemoteFraction < 0 || top.RemoteFraction > 1 {
			return fmt.Errorf("%w: RemoteFraction must be in [0,1]", ErrInvalidPlatform)
		}
	default:
		return fmt.Errorf("%w: unknown split policy %v", ErrInvalidPlatform, top.Policy)
	}
	return nil
}

// shares returns each tier's fraction of the miss population under the
// fraction policies. SplitFractions passes Share through untouched (so
// legacy tiered hit fractions keep their exact bits); SplitInterleave
// normalizes the weights.
func (top Topology) shares() []float64 {
	sh := make([]float64, len(top.Tiers))
	if top.Policy == SplitInterleave {
		sum := 0.0
		for _, t := range top.Tiers {
			sum += t.Share
		}
		for i, t := range top.Tiers {
			sh[i] = t.Share / sum
		}
		return sh
	}
	for i, t := range top.Tiers {
		sh[i] = t.Share
	}
	return sh
}

// WithTierEfficiency returns a copy with every tier's efficiency set to
// eff — the one-knob sustained-vs-peak sweep.
func (top Topology) WithTierEfficiency(eff float64) Topology {
	tiers := make([]MemTier, len(top.Tiers))
	copy(tiers, top.Tiers)
	for i := range tiers {
		tiers[i].Efficiency = eff
	}
	top.Tiers = tiers
	top.Name = fmt.Sprintf("%s@eff=%.0f%%", top.Name, eff*100)
	return top
}

// Topology converts the flat platform to its one-tier topology.
func (pl Platform) Topology() Topology {
	return Topology{
		Name:      pl.Name,
		Threads:   pl.Threads,
		Cores:     pl.Cores,
		CoreSpeed: pl.CoreSpeed,
		LineSize:  pl.LineSize,
		Policy:    SplitFractions,
		Tiers: []MemTier{{
			Name:       "mem",
			Share:      1,
			Compulsory: pl.Compulsory,
			PeakBW:     pl.PeakBW,
			Queue:      pl.Queue,
		}},
	}
}

// Topology converts the tiered platform to its fraction-split topology.
func (tp TieredPlatform) Topology() Topology {
	top := Topology{
		Name:      tp.Name,
		Threads:   tp.Threads,
		Cores:     tp.Cores,
		CoreSpeed: tp.CoreSpeed,
		LineSize:  tp.LineSize,
		Policy:    SplitFractions,
	}
	for _, t := range tp.Tiers {
		top.Tiers = append(top.Tiers, MemTier{
			Name:       t.Name,
			Share:      t.HitFraction,
			Compulsory: t.Compulsory,
			PeakBW:     t.PeakBW,
			Queue:      t.Queue,
		})
	}
	return top
}

// Topology converts the NUMA platform to its local/remote topology (one
// socket describes the symmetric machine, as in EvaluateNUMA).
func (np NUMAPlatform) Topology() Topology {
	return Topology{
		Name:           np.Name,
		Threads:        np.ThreadsPerSocket,
		Cores:          np.CoresPerSocket,
		CoreSpeed:      np.CoreSpeed,
		LineSize:       np.LineSize,
		Policy:         SplitLocalRemote,
		RemoteFraction: np.RemoteFraction,
		Tiers: []MemTier{
			{Name: "dram", Compulsory: np.LocalCompulsory, PeakBW: np.SocketPeakBW, Queue: np.Queue},
			{Name: "link", Compulsory: np.RemoteAdder, PeakBW: np.LinkPeakBW, Queue: np.Queue},
		},
	}
}

// TopologyTierPoint is one tier's share of a solved topology point.
type TopologyTierPoint struct {
	Name string
	// MissPenalty is the tier's loaded latency. Under SplitLocalRemote
	// tier 1 reports the full remote-path latency (local tier's loaded
	// latency plus the loaded interconnect hop), since remote misses
	// traverse both resources serially.
	MissPenalty units.Duration
	// Demand is the bandwidth loading this tier's channels.
	Demand units.BytesPerSecond
	// Delivered is min(Demand, sustained bandwidth).
	Delivered units.BytesPerSecond
	// Utilization is Demand over the tier's sustained bandwidth.
	Utilization float64
	// Saturated reports the tier's bandwidth-limit check fired.
	Saturated bool
}

// TopologyPoint is the stable operating point of a workload class on an
// N-tier topology.
type TopologyPoint struct {
	CPI float64
	// EffectiveMP is the traffic-weighted miss penalty across tiers.
	EffectiveMP units.Duration
	Tiers       []TopologyTierPoint
	// BandwidthBound reports a saturated tier set (or bounded) the CPI.
	BandwidthBound bool
	// Limiter names the tier whose Eq. 4 bound won the regime choice,
	// if any.
	Limiter    string
	Iterations int
}

// topoCase is the solve-kernel adapter for one (workload, topology)
// pair: policy-specific scenario construction over shared tier systems,
// plus the conversion from a kernel Outcome back to a TopologyPoint.
type topoCase struct {
	solver solve.Solver
	sc     solve.Scenario
	point  func(solve.Outcome) (TopologyPoint, error)
}

// newTopoCase validates and compiles one evaluation. The unknown
// follows the shape: a one-tier fraction topology solves in
// loaded-latency space (the flat model's natural coordinate), multi-tier
// fraction splits and the local/remote split solve the Eq. 5 coupling
// in CPI space.
func newTopoCase(p Params, top Topology) (*topoCase, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	c := &topoCase{}
	switch {
	case top.Policy == SplitLocalRemote:
		c.buildLocalRemote(p, top)
	case len(top.Tiers) == 1:
		c.buildFlat(p, top)
	default:
		c.buildFractions(p, top)
	}
	return c, nil
}

// buildFlat compiles the degenerate one-tier topology: the classic
// Eq. 1 + Eq. 4 fixed point in loaded-latency space, with the §VI.C.1
// saturation handoff. Bit-identical to the historical single-platform
// evaluator (tier efficiency 1).
func (c *topoCase) buildFlat(p Params, top Topology) {
	t := top.Tiers[0]
	sust := t.SustainedBW()
	sys := queueing.System{Compulsory: t.Compulsory, PeakBW: sust, Curve: t.Queue}
	demand := func(mp units.Duration) units.BytesPerSecond {
		cpi := p.CPIEffAt(mp, top.CoreSpeed)
		return p.Demand(cpi, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
	}

	var bwErr error // deferred BandwidthLimitedCPI failure from a LimitFunc
	sc := sys.Scenario(p.Name+"@"+top.Name, demand)
	sc.CPIOf = func(mp float64) float64 {
		return p.CPIEffAt(units.Duration(mp), top.CoreSpeed)
	}
	sc.Limits = []solve.LimitFunc{
		// Saturation clamp: active when the converged utilization reaches
		// the curve's stability limit. Bound is false — saturation alone
		// does not mark the point bandwidth bound unless the Eq. 4 CPI
		// actually wins the comparison.
		func(mp, _ float64) (solve.Limit, bool) {
			u := sys.Utilization(demand(units.Duration(mp)))
			if !sys.Saturated(u) {
				return solve.Limit{}, false
			}
			availPerThread := sust / units.BytesPerSecond(top.Threads)
			bwCPI, err := p.BandwidthLimitedCPI(availPerThread, top.CoreSpeed, top.LineSize)
			if err != nil {
				bwErr = err
				return solve.Limit{}, false
			}
			return solve.Limit{Resource: "memory", CPI: bwCPI}, true
		},
		// Demand-exceeds-peak check at the (possibly clamped) final CPI:
		// marks the regime bandwidth limited without changing the CPI.
		func(_, cpi float64) (solve.Limit, bool) {
			d := p.Demand(cpi, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
			if d <= sust {
				return solve.Limit{}, false
			}
			return solve.Limit{Resource: "memory", Bound: true}, true
		},
	}
	c.sc = sc
	c.solver = solve.Solver{}
	c.point = func(out solve.Outcome) (TopologyPoint, error) {
		if bwErr != nil {
			return TopologyPoint{Iterations: out.Iterations}, bwErr
		}
		mp := units.Duration(out.X)
		tpt := TopologyTierPoint{Name: t.Name, MissPenalty: mp}
		op := TopologyPoint{
			CPI:         out.CPI,
			EffectiveMP: mp,
			Limiter:     out.Limiter,
			Iterations:  out.Iterations,
			// BandwidthBound: either the Eq. 4 clamp raised the CPI above
			// the latency-limited value, or demand at the final CPI
			// exceeds the sustained bandwidth.
			BandwidthBound: out.CPI > p.CPIEffAt(mp, top.CoreSpeed),
		}
		// Demand, delivered bandwidth, and utilization reported at the
		// final CPI.
		tpt.Demand = p.Demand(op.CPI, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
		if tpt.Demand > sust {
			op.BandwidthBound = true
			tpt.Delivered = sust
		} else {
			tpt.Delivered = tpt.Demand
		}
		tpt.Utilization = sys.Utilization(tpt.Demand)
		tpt.Saturated = sys.Saturated(tpt.Utilization)
		op.Tiers = []TopologyTierPoint{tpt}
		return op, nil
	}
}

// buildFractions compiles a multi-tier fraction (or interleave) split:
// the Eq. 5 fixed point in CPI space, each tier's loaded latency implied
// by its share of the traffic. Bit-identical to the historical tiered
// evaluator when shares are the tier hit fractions (efficiency 1).
func (c *topoCase) buildFractions(p Params, top Topology) {
	sh := top.shares()
	systems := make([]queueing.System, len(top.Tiers))
	susts := make([]units.BytesPerSecond, len(top.Tiers))
	for i, t := range top.Tiers {
		susts[i] = t.SustainedBW()
		systems[i] = queueing.System{Compulsory: t.Compulsory, PeakBW: susts[i], Curve: t.Queue}
	}

	// eq5At evaluates Eq. 5 with each tier's loaded latency implied by
	// the demand at candidate CPI c, and reports the per-tier state.
	eq5At := func(cpi0 float64) (float64, []TopologyTierPoint) {
		demandTotal := p.Demand(cpi0, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
		cpi := p.CPICache
		tiers := make([]TopologyTierPoint, len(top.Tiers))
		for i, t := range top.Tiers {
			d := demandTotal * units.BytesPerSecond(sh[i])
			mp := systems[i].LoadedLatency(d)
			cpi += p.MPI() * sh[i] * float64(mp.Cycles(top.CoreSpeed)) * p.BF
			tiers[i] = TopologyTierPoint{
				Name:        t.Name,
				MissPenalty: mp,
				Demand:      d,
				Utilization: systems[i].Utilization(d),
			}
		}
		return cpi, tiers
	}

	// Bracket: CPI at zero queuing ≤ fixed point ≤ CPI at max stable
	// queuing on every tier.
	lo := p.CPICache
	for i, t := range top.Tiers {
		lo += p.MPI() * sh[i] * float64(t.Compulsory.Cycles(top.CoreSpeed)) * p.BF
	}
	hi := p.CPICache
	for i, t := range top.Tiers {
		maxMP := t.Compulsory + systems[i].Curve.MaxStableDelay()
		hi += p.MPI() * sh[i] * float64(maxMP.Cycles(top.CoreSpeed)) * p.BF
	}

	// The scenario solves in CPI space; the converged CPI is Eq. 5
	// re-evaluated at the final midpoint, which also yields the per-tier
	// state the limits then annotate.
	var tiers []TopologyTierPoint
	sc := solve.Scenario{
		Name:    p.Name + "@" + top.Name,
		Unknown: "cpi",
		Lo:      lo,
		Hi:      hi,
		F: func(cpi0 float64) float64 {
			got, _ := eq5At(cpi0)
			return got
		},
		CPIOf: func(cpi0 float64) float64 {
			got, ts := eq5At(cpi0)
			tiers = ts
			return got
		},
	}
	// Bandwidth-limit check per tier: a tier whose share of the traffic
	// saturates its channels bounds the whole pipeline. As in the flat
	// model, the final CPI is the worse of the latency-limited CPI and
	// each tier's bandwidth-limited CPI (Eq. 4 with BW set to the tier's
	// sustained bandwidth for its share). The checks chain: a clamp
	// applied by one tier raises the CPI — and so lowers the demand —
	// the next tier's saturation test sees.
	for i, t := range top.Tiers {
		i, t := i, t
		sc.Limits = append(sc.Limits, func(_, cpi float64) (solve.Limit, bool) {
			demandTotal := p.Demand(cpi, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
			d := demandTotal * units.BytesPerSecond(sh[i])
			if float64(d) < float64(susts[i])*0.999 {
				return solve.Limit{}, false
			}
			tiers[i].Saturated = true
			share := p.BytesPerInstruction(top.LineSize) * sh[i]
			bwCPI := share * float64(top.CoreSpeed) / (float64(susts[i]) / float64(top.Threads))
			return solve.Limit{Resource: t.Name, CPI: bwCPI, Bound: true}, true
		})
	}

	c.sc = sc
	c.solver = solve.Solver{Options: solve.Options{Tol: 1e-9, MaxIter: 200}}
	c.point = func(out solve.Outcome) (TopologyPoint, error) {
		eff := 0.0
		for i := range tiers {
			tiers[i].Delivered = minBW(tiers[i].Demand, susts[i])
			eff += sh[i] * float64(tiers[i].MissPenalty)
		}
		return TopologyPoint{
			CPI:            out.CPI,
			EffectiveMP:    units.Duration(eff),
			Tiers:          tiers,
			BandwidthBound: out.Regime == solve.BandwidthLimited,
			Limiter:        out.Limiter,
			Iterations:     out.Iterations,
		}, nil
	}
}

// buildLocalRemote compiles the NUMA-style split: tier 0 (local memory)
// serves the full per-socket demand — by symmetry a socket's channels
// carry its local traffic plus its peers' inbound remote traffic —
// while the RemoteFraction share additionally traverses tier 1 (the
// interconnect). Eq. 1 applies once to the traffic-weighted effective
// latency, matching the §VIII construction bit-for-bit (efficiency 1).
func (c *topoCase) buildLocalRemote(p Params, top Topology) {
	t0, t1 := top.Tiers[0], top.Tiers[1]
	sust0, sust1 := t0.SustainedBW(), t1.SustainedBW()
	local := queueing.System{Compulsory: t0.Compulsory, PeakBW: sust0, Curve: t0.Queue}
	link := queueing.System{Compulsory: t1.Compulsory, PeakBW: sust1, Curve: t1.Queue}
	rf := top.RemoteFraction

	at := func(cpi float64) (float64, [2]TopologyTierPoint, units.Duration) {
		perSocket := p.Demand(cpi, top.CoreSpeed, top.LineSize) * units.BytesPerSecond(top.Threads)
		localDemand := perSocket // local (1−rf) + inbound remote rf
		linkDemand := perSocket * units.BytesPerSecond(rf)

		localMP := local.LoadedLatency(localDemand)
		// A remote miss pays the remote tier's loaded latency plus the
		// interconnect hop (with the link's own queuing).
		remoteMP := localMP + link.LoadedLatency(linkDemand)

		eff := units.Duration((1-rf)*float64(localMP) + rf*float64(remoteMP))
		got := p.CPIEffAt(eff, top.CoreSpeed)
		return got, [2]TopologyTierPoint{
			{Name: t0.Name, MissPenalty: localMP, Demand: localDemand, Utilization: local.Utilization(localDemand)},
			{Name: t1.Name, MissPenalty: remoteMP, Demand: linkDemand, Utilization: link.Utilization(linkDemand)},
		}, eff
	}

	// Bracket the fixed point between the zero-queue and max-queue CPIs.
	minMP := units.Duration((1-rf)*float64(t0.Compulsory) + rf*float64(t0.Compulsory+t1.Compulsory))
	maxMP := minMP + t0.Queue.MaxStableDelay() + units.Duration(rf*float64(t1.Queue.MaxStableDelay()))
	lo, hi := p.CPIEffAt(minMP, top.CoreSpeed), p.CPIEffAt(maxMP, top.CoreSpeed)

	// The scenario solves in CPI space; the per-tier state at the
	// converged CPI feeds the bandwidth limits, which use the demands
	// the solver saw (not recomputed at a clamped CPI — the checks ask
	// whether the operating point itself saturates).
	var state [2]TopologyTierPoint
	var effMP units.Duration
	sc := solve.Scenario{
		Name:    p.Name + "@" + top.Name,
		Unknown: "cpi",
		Lo:      lo,
		Hi:      hi,
		F: func(cpi float64) float64 {
			got, _, _ := at(cpi)
			return got
		},
		CPIOf: func(cpi float64) float64 {
			got, st, eff := at(cpi)
			state = st
			effMP = eff
			return got
		},
		Limits: []solve.LimitFunc{
			// Bandwidth limits: local memory first, then the link for the
			// remote share.
			func(_, _ float64) (solve.Limit, bool) {
				if float64(state[0].Demand) < float64(sust0)*0.999 {
					return solve.Limit{}, false
				}
				state[0].Saturated = true
				bwCPI := p.BytesPerInstruction(top.LineSize) * float64(top.CoreSpeed) /
					(float64(sust0) / float64(top.Threads))
				return solve.Limit{Resource: t0.Name, CPI: bwCPI, Bound: true}, true
			},
			func(_, _ float64) (solve.Limit, bool) {
				if rf <= 0 || float64(state[1].Demand) < float64(sust1)*0.999 {
					return solve.Limit{}, false
				}
				state[1].Saturated = true
				bwCPI := p.BytesPerInstruction(top.LineSize) * rf * float64(top.CoreSpeed) /
					(float64(sust1) / float64(top.Threads))
				return solve.Limit{Resource: t1.Name, CPI: bwCPI, Bound: true}, true
			},
		},
	}

	c.sc = sc
	c.solver = solve.Solver{Options: solve.Options{Tol: 1e-9, MaxIter: 200}}
	c.point = func(out solve.Outcome) (TopologyPoint, error) {
		state[0].Delivered = minBW(state[0].Demand, sust0)
		state[1].Delivered = minBW(state[1].Demand, sust1)
		return TopologyPoint{
			CPI:            out.CPI,
			EffectiveMP:    effMP,
			Tiers:          state[:],
			BandwidthBound: out.Regime == solve.BandwidthLimited,
			Limiter:        out.Limiter,
			Iterations:     out.Iterations,
		}, nil
	}
}

func minBW(a, b units.BytesPerSecond) units.BytesPerSecond {
	if a < b {
		return a
	}
	return b
}

// EvaluateTopology finds the stable operating point of workload class p
// on an N-tier memory topology — the single evaluator behind Evaluate,
// EvaluateTiered, and EvaluateNUMA. As with those adapters, a
// solve.Recorder planted in ctx observes the solver telemetry and
// cancellation is honored before any model evaluation.
func EvaluateTopology(ctx context.Context, p Params, top Topology) (TopologyPoint, error) {
	c, err := newTopoCase(p, top)
	if err != nil {
		return TopologyPoint{}, err
	}
	out, err := c.solver.Solve(ctx, c.sc)
	if err != nil {
		return TopologyPoint{Iterations: out.Iterations}, err
	}
	return c.point(out)
}

// EvaluateTopologyAll evaluates the full cross product of classes ×
// topologies through the kernel's batch API — the point-grid path used
// by sweeps and the experiment engine. Points are returned as
// [class][topology]; the error is the first failure in that order,
// wrapped with the failing (class, topology) pair so batch callers can
// report which grid cell broke.
func EvaluateTopologyAll(ctx context.Context, classes []Params, tops []Topology) ([][]TopologyPoint, error) {
	cases := make([]*topoCase, 0, len(classes)*len(tops))
	scs := make([]solve.Scenario, 0, len(classes)*len(tops))
	for i, p := range classes {
		for j, top := range tops {
			// Abandoned grids (a server-side deadline, a disconnected
			// sweep client) stop between points rather than validating
			// and queueing the rest of the cross product.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := newTopoCase(p, top)
			if err != nil {
				return nil, gridErr(i, p, j, top.Name, err)
			}
			cases = append(cases, c)
			scs = append(scs, c.sc)
		}
	}
	outs, errs := solveEach(ctx, cases, scs)
	grid := make([][]TopologyPoint, len(classes))
	for i, p := range classes {
		grid[i] = make([]TopologyPoint, len(tops))
		for j, top := range tops {
			k := i*len(tops) + j
			if errs[k] != nil {
				return nil, gridErr(i, p, j, top.Name, errs[k])
			}
			pt, err := cases[k].point(outs[k])
			if err != nil {
				return nil, gridErr(i, p, j, top.Name, err)
			}
			grid[i][j] = pt
		}
	}
	return grid, nil
}

// gridErr wraps a batch failure with the indices and names of the grid
// cell that produced it, so wire-level batch errors are actionable.
func gridErr(i int, p Params, j int, platform string, err error) error {
	return fmt.Errorf("class %d (%s) × platform %d (%s): %w", i, p.Name, j, platform, err)
}

// solveEach runs the per-case solvers over the kernel's shared worker
// pool, preserving per-scenario errors. Cases may carry different
// solver options; the batch is grouped by options so each group runs
// through one SolveEach call.
func solveEach(ctx context.Context, cases []*topoCase, scs []solve.Scenario) ([]solve.Outcome, []error) {
	outs := make([]solve.Outcome, len(scs))
	errs := make([]error, len(scs))
	// Group indices by solver options (flat cases use defaults, CPI-space
	// cases the tight tolerance) to keep each group one batch call.
	groups := map[solve.Options][]int{}
	for k, c := range cases {
		groups[c.solver.Options] = append(groups[c.solver.Options], k)
	}
	for opts, idx := range groups {
		sub := make([]solve.Scenario, len(idx))
		for n, k := range idx {
			sub[n] = scs[k]
		}
		subOuts, subErrs := solve.Solver{Options: opts}.SolveEach(ctx, sub)
		for n, k := range idx {
			outs[k] = subOuts[n]
			errs[k] = subErrs[n]
		}
	}
	return outs, errs
}
