package model

import (
	"context"
	"math"
	"testing"

	"repro/internal/units"
)

func tieredFrom(pl Platform, tiers ...Tier) TieredPlatform {
	return TieredPlatform{
		Name:      "test",
		Threads:   pl.Threads,
		Cores:     pl.Cores,
		CoreSpeed: pl.CoreSpeed,
		LineSize:  pl.LineSize,
		Tiers:     tiers,
	}
}

func TestTieredValidate(t *testing.T) {
	pl := testPlatform()
	good := tieredFrom(pl, Tier{Name: "DRAM", HitFraction: 1, Compulsory: pl.Compulsory, PeakBW: pl.PeakBW, Queue: pl.Queue})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TieredPlatform{
		tieredFrom(pl), // no tiers
		tieredFrom(pl, Tier{Name: "x", HitFraction: 0.5, Compulsory: 75, PeakBW: 1e9, Queue: pl.Queue}), // fractions don't sum to 1
		tieredFrom(pl, Tier{Name: "x", HitFraction: 1.5, Compulsory: 75, PeakBW: 1e9, Queue: pl.Queue}), // fraction out of range
		tieredFrom(pl, Tier{Name: "x", HitFraction: 1, Compulsory: 0, PeakBW: 1e9, Queue: pl.Queue}),    // bad latency
		tieredFrom(pl, Tier{Name: "x", HitFraction: 1, Compulsory: 75, PeakBW: 0, Queue: pl.Queue}),     // bad bandwidth
		tieredFrom(pl, Tier{Name: "x", HitFraction: 1, Compulsory: 75, PeakBW: 1e9, Queue: nil}),        // no curve
		{Tiers: []Tier{{Name: "x", HitFraction: 1, Compulsory: 75, PeakBW: 1e9, Queue: pl.Queue}}},      // bad core params
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSingleTierMatchesEvaluate(t *testing.T) {
	// Eq. 5 with one tier must reduce to Eq. 1 + the single-tier solver.
	pl := testPlatform()
	tp := tieredFrom(pl, Tier{Name: "DRAM", HitFraction: 1, Compulsory: pl.Compulsory, PeakBW: pl.PeakBW, Queue: pl.Queue})
	for _, p := range allClasses() {
		single, err := Evaluate(context.Background(), p, pl)
		if err != nil {
			t.Fatal(err)
		}
		tiered, err := EvaluateTiered(context.Background(), p, tp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single.CPI-tiered.CPI) > 0.01*single.CPI {
			t.Fatalf("%s: single %v vs tiered %v", p.Name, single.CPI, tiered.CPI)
		}
	}
}

func TestTieredDegradesWithFarTier(t *testing.T) {
	pl := testPlatform()
	far := Tier{Name: "PMEM", Compulsory: pl.Compulsory * 3, PeakBW: pl.PeakBW, Queue: pl.Queue}
	near := Tier{Name: "DRAM", Compulsory: pl.Compulsory, PeakBW: pl.PeakBW, Queue: pl.Queue}
	p := enterpriseClass()

	cpiAt := func(hit float64) float64 {
		n, f := near, far
		n.HitFraction, f.HitFraction = hit, 1-hit
		op, err := EvaluateTiered(context.Background(), p, tieredFrom(pl, n, f))
		if err != nil {
			t.Fatal(err)
		}
		return op.CPI
	}
	// For a latency-sensitive class with ample bandwidth, more far-tier
	// traffic strictly hurts.
	prev := cpiAt(1.0)
	for _, hit := range []float64{0.8, 0.6, 0.4, 0.2, 0.0} {
		cur := cpiAt(hit)
		if cur < prev-1e-9 {
			t.Fatalf("CPI decreased as far-tier share grew: %v -> %v at hit %v", prev, cur, hit)
		}
		prev = cur
	}
}

func TestTieredEq5HandComputed(t *testing.T) {
	// Zero-queue curves make Eq. 5 closed-form:
	// CPI = CPI_cache + MPI×(f1×MP1 + f2×MP2)×BF.
	pl := testPlatform()
	zero := zeroQueue{}
	tp := tieredFrom(pl,
		Tier{Name: "near", HitFraction: 0.8, Compulsory: 75, PeakBW: pl.PeakBW, Queue: zero},
		Tier{Name: "far", HitFraction: 0.2, Compulsory: 225, PeakBW: pl.PeakBW, Queue: zero},
	)
	p := enterpriseClass()
	op, err := EvaluateTiered(context.Background(), p, tp)
	if err != nil {
		t.Fatal(err)
	}
	mp1 := units.Duration(75).Cycles(pl.CoreSpeed)
	mp2 := units.Duration(225).Cycles(pl.CoreSpeed)
	want := p.CPICache + p.MPI()*(0.8*float64(mp1)+0.2*float64(mp2))*p.BF
	if math.Abs(op.CPI-want) > 1e-6 {
		t.Fatalf("Eq.5 = %v, want %v", op.CPI, want)
	}
}

// zeroQueue is a Curve with no queuing at all.
type zeroQueue struct{}

func (zeroQueue) Delay(float64) units.Duration   { return 0 }
func (zeroQueue) MaxStableDelay() units.Duration { return 0 }

func TestTieredBandwidthBoundTier(t *testing.T) {
	// Starve the far tier's bandwidth: HPC-class traffic through it must
	// flag bandwidth-bound and raise CPI above the latency-only value.
	pl := testPlatform()
	tp := tieredFrom(pl,
		Tier{Name: "near", HitFraction: 0.5, Compulsory: pl.Compulsory, PeakBW: pl.PeakBW, Queue: pl.Queue},
		Tier{Name: "far", HitFraction: 0.5, Compulsory: pl.Compulsory * 3, PeakBW: units.GBpsOf(2), Queue: pl.Queue},
	)
	op, err := EvaluateTiered(context.Background(), hpcClass(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !op.BandwidthBound {
		t.Fatal("starved far tier must be bandwidth bound")
	}
	saturatedSeen := false
	for _, tier := range op.Tiers {
		if tier.Saturated {
			saturatedSeen = true
		}
	}
	if !saturatedSeen {
		t.Fatal("some tier must report saturation")
	}
}

func TestTieredRejectsBadInput(t *testing.T) {
	pl := testPlatform()
	tp := tieredFrom(pl, Tier{Name: "DRAM", HitFraction: 1, Compulsory: pl.Compulsory, PeakBW: pl.PeakBW, Queue: pl.Queue})
	if _, err := EvaluateTiered(context.Background(), Params{}, tp); err == nil {
		t.Fatal("want params error")
	}
	if _, err := EvaluateTiered(context.Background(), bigDataClass(), tieredFrom(pl)); err == nil {
		t.Fatal("want platform error")
	}
}

func TestPrefetchBFImprovement(t *testing.T) {
	p := bigDataClass()
	q, err := PrefetchBFImprovement(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.BF-p.BF/2) > 1e-12 {
		t.Fatalf("BF = %v, want halved", q.BF)
	}
	if q.Name == p.Name {
		t.Fatal("name must change")
	}
	if _, err := PrefetchBFImprovement(p, 1.5); err == nil {
		t.Fatal("want error for coverage > 1")
	}
}
