package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanErrEmpty(t *testing.T) {
	if _, err := MeanErr(nil); err != ErrEmpty {
		t.Fatalf("MeanErr(nil) err = %v, want ErrEmpty", err)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.5 {
		t.Fatalf("WeightedMean = %v, want 1.5", got)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Fatal("want error for zero total weight")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of single value = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("Min/Max of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("want error for p<0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("want error for p>100")
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{7}, 90)
	if err != nil || got != 7 {
		t.Fatalf("Percentile single = %v, %v", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Property: the Running accumulator matches the batch computations.
func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		tol := 1e-6 * math.Max(1, math.Abs(Mean(xs)))
		if math.Abs(r.Mean()-Mean(xs)) > tol {
			return false
		}
		if r.Min() != Min(xs) || r.Max() != Max(xs) {
			return false
		}
		vTol := 1e-6 * math.Max(1, Variance(xs))
		return math.Abs(r.Variance()-Variance(xs)) <= vTol && r.N() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 || r.StdDev() != 0 {
		t.Fatal("zero Running should report zeros")
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(1.02, 1.0); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("RelError = %v, want 0.02", got)
	}
	if got := RelError(0, 0); got != 0 {
		t.Fatalf("RelError(0,0) = %v, want 0", got)
	}
	if got := RelError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelError(1,0) = %v, want +Inf", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	// The paper validates its fixed-pathlength assumption with low
	// run-to-run variation; the CoV of identical samples must be 0.
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("CoV of constant = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Fatalf("CoV with zero mean = %v, want 0", got)
	}
	got := CoefficientOfVariation([]float64{9, 11})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("CoV = %v, want 0.1", got)
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive and negative linear relationships.
	if r, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v, want 1", r, err)
	}
	if r, err := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); err != nil || math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v, want -1", r, err)
	}
	// Known mid-strength value: r of (1,2,3) vs (1,3,2) is 0.5.
	if r, err := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); err != nil || math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("Pearson = %v, %v, want 0.5", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("Pearson of one pair should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("Pearson of mismatched lengths should error")
	}
	if _, err := Pearson([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("Pearson with zero variance should error")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil || math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %v, %v, want 10", got, err)
	}
	// Zero observations are skipped, not divided by.
	got, err = MAPE([]float64{0, 100}, []float64{5, 120})
	if err != nil || math.Abs(got-20) > 1e-12 {
		t.Fatalf("MAPE with zero obs = %v, %v, want 20", got, err)
	}
	if _, err := MAPE([]float64{0}, []float64{1}); err == nil {
		t.Fatal("MAPE with no usable pairs should error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("MAPE of empty input should error")
	}
}
