// Package stats provides the small set of summary statistics the
// characterization methodology needs: means, variances, percentiles,
// weighted aggregation across program phases (paper §IV.D), and running
// (online) accumulators used by the PMU sampler.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice;
// callers that must distinguish use MeanErr.
func Mean(xs []float64) float64 {
	m, _ := MeanErr(xs)
	return m
}

// MeanErr returns the arithmetic mean of xs, or ErrEmpty.
func MeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). The paper weights per-phase
// model components by the number of instructions in each phase (§IV.D).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ws) {
		return 0, ErrEmpty
	}
	var sw, swx float64
	for i, x := range xs {
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		return 0, ErrEmpty
	}
	return swx / sw, nil
}

// Variance returns the population variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if len(ys) == 1 {
		return ys[0], nil
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo], nil
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac, nil
}

// Running accumulates a stream of observations with O(1) memory using
// Welford's algorithm. The PMU sampler uses one per event ratio.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of observations added.
func (r *Running) N() int { return r.n }

// Mean reports the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Variance reports the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev reports the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min reports the smallest observation (0 before any observation).
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation (0 before any observation).
func (r *Running) Max() float64 { return r.max }

// RelError returns (got-want)/want. The paper's Table 3 reports model error
// this way ("Error" row, within ±3%).
func RelError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (got - want) / want
}

// CoefficientOfVariation returns StdDev/Mean, the run-to-run variation
// measure the paper uses to validate the fixed-pathlength assumption.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Pearson returns the sample Pearson correlation coefficient between
// paired observations xs and ys — the calibration loop's measure of how
// well predicted KPIs track observed ones across clients. It returns
// ErrEmpty for fewer than two pairs or mismatched lengths, and an error
// when either side has zero variance (r is undefined there).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: pearson undefined for zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MAPE returns the mean absolute percentage error of predictions pred
// against observations obs, in percent. Pairs whose observation is zero
// are skipped (their percentage error is undefined); if no usable pair
// remains it returns ErrEmpty.
func MAPE(obs, pred []float64) (float64, error) {
	if len(obs) == 0 || len(obs) != len(pred) {
		return 0, ErrEmpty
	}
	var sum float64
	n := 0
	for i := range obs {
		if obs[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - obs[i]) / obs[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return 100 * sum / float64(n), nil
}
