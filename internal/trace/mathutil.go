package trace

import "math"

// Thin wrappers keep math usage in one place (and the RNG file free of a
// direct dependency, which makes the sampling code easier to test against
// alternative implementations).

func ln(x float64) float64 { return math.Log(x) }

func pow(x, y float64) float64 { return math.Pow(x, y) }

func mathFloat64bits(v float64) uint64 { return math.Float64bits(v) }

func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
