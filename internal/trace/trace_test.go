package trace

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped (xorshift cannot leave 0)")
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(10); v >= 10 {
			t.Fatalf("Uint64n(10) = %d", v)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("p=0 must never fire")
		}
		if !r.Bernoulli(1) {
			t.Fatal("p=1 must always fire")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatalf("Exp < 0: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp mean = %v, want ≈10", mean)
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(19)
	for _, skew := range []float64{0, 0.5, 1.2} {
		for i := 0; i < 1000; i++ {
			if v := r.Zipf(100, skew); v >= 100 {
				t.Fatalf("Zipf out of range: %d at skew %v", v, skew)
			}
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	r := NewRNG(23)
	const n = 20000
	countHot := func(skew float64) int {
		hot := 0
		for i := 0; i < n; i++ {
			if r.Zipf(1000, skew) < 100 {
				hot++
			}
		}
		return hot
	}
	uniform := countHot(0)
	skewed := countHot(1.2)
	if skewed <= uniform*2 {
		t.Fatalf("skew 1.2 hot hits (%d) should far exceed uniform (%d)", skewed, uniform)
	}
}

func TestZipfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Zipf(0, 1)
}

func TestAddressSpaceDisjoint(t *testing.T) {
	var s AddressSpace
	a := s.AllocRegion(1 << 20)
	b := s.AllocRegion(1 << 20)
	if a.Base == 0 {
		t.Fatal("address 0 must never be allocated")
	}
	if b.Base < a.Base+a.Size {
		t.Fatalf("regions overlap: a=[%x,%x) b=%x", a.Base, a.Base+a.Size, b.Base)
	}
}

// Property: any allocation sequence yields pairwise-disjoint regions.
func TestAddressSpaceDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var s AddressSpace
		type region struct{ base, size uint64 }
		var regions []region
		for _, sz := range sizes {
			size := uint64(sz)%65536 + 1
			base := s.Alloc(size, 64)
			for _, r := range regions {
				if base < r.base+r.size && r.base < base+size {
					return false
				}
			}
			if base%64 != 0 {
				return false
			}
			regions = append(regions, region{base, size})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewAddressSpaceBase(t *testing.T) {
	s := NewAddressSpace(1 << 36)
	if got := s.Alloc(64, 64); got < 1<<36 {
		t.Fatalf("alloc below requested base: %x", got)
	}
	s0 := NewAddressSpace(0)
	if got := s0.Alloc(64, 64); got == 0 {
		t.Fatal("zero base must be remapped")
	}
}

func TestRegionElemAddrWraps(t *testing.T) {
	r := Region{Base: 0x1000, Size: 256}
	if got := r.ElemAddr(0, 8); got != 0x1000 {
		t.Fatalf("elem 0 = %x", got)
	}
	if got := r.ElemAddr(32, 8); got != 0x1000 {
		t.Fatalf("elem 32 must wrap to base, got %x", got)
	}
	empty := Region{Base: 5}
	if empty.ElemAddr(9, 8) != 5 {
		t.Fatal("empty region returns base")
	}
}

func TestRegionLines(t *testing.T) {
	r := Region{Base: 0, Size: 130}
	if got := r.Lines(64); got != 3 {
		t.Fatalf("Lines = %d, want 3 (rounded up)", got)
	}
	if got := r.Lines(0); got != 3 {
		t.Fatalf("Lines with default size = %d, want 3", got)
	}
}

func TestBlockResetKeepsCapacity(t *testing.T) {
	b := &Block{}
	b.Instructions = 10
	b.BaseCPI = 1
	b.AddRef(1, false)
	b.AddNT(2)
	b.Chains = 3
	b.IOBytes = 4
	b.IdleNS = 5
	capBefore := cap(b.Refs)
	b.Reset()
	if b.Instructions != 0 || b.BaseCPI != 0 || len(b.Refs) != 0 || b.Chains != 0 || b.IOBytes != 0 || b.IdleNS != 0 {
		t.Fatalf("Reset left state: %+v", b)
	}
	if cap(b.Refs) != capBefore {
		t.Fatal("Reset must keep ref capacity")
	}
}

func TestAddNTSetsFlags(t *testing.T) {
	b := &Block{}
	b.AddNT(0x40)
	if !b.Refs[0].Write || !b.Refs[0].NonTemporal {
		t.Fatalf("AddNT flags: %+v", b.Refs[0])
	}
}
