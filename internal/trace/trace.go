// Package trace defines the instruction/memory-reference stream that
// connects workload kernels to the machine simulator.
//
// A workload instance produces an endless sequence of Blocks. A Block is a
// short run of committed instructions with an attached list of memory
// references at cache-line granularity, a core-boundedness figure
// (BaseCPI), an explicit memory-level-parallelism structure (Chains — how
// many independent dependence chains the block's misses fall into, which
// is what determines the emergent blocking factor per Eq. 2/3 of the
// paper), and optional I/O traffic.
//
// Addresses are synthetic: workloads allocate regions from an AddressSpace
// and compute addresses from their real data-structure layouts. The
// backing values live in (much smaller) real Go slices; the address stream
// reproduces the full-scale footprint. This "footprint virtualization" is
// what lets a laptop-scale process replay the cache behaviour of a
// several-hundred-GB dataset (see DESIGN.md §2).
package trace

// Ref is one memory reference at cache-line granularity.
type Ref struct {
	Addr uint64 // byte address; the cache model masks to line granularity
	// Write marks a store. Store misses allocate and dirty the line but do
	// not stall the core (store-buffer semantics).
	Write bool
	// NonTemporal marks a streaming store that bypasses the cache
	// hierarchy and writes directly to memory (the paper notes NITS's
	// writeback rate exceeds 100% of misses because of these).
	NonTemporal bool
	// NoPrefetch suppresses prefetcher training for this reference
	// (e.g. TLB-miss-like metadata walks that never form streams).
	NoPrefetch bool
}

// Block is a run of instructions with its memory behaviour.
type Block struct {
	// Instructions committed in this block.
	Instructions uint64
	// BaseCPI is the block's core-limited CPI: the cycles per instruction
	// the block would take with all loads hitting the L1 (data
	// dependencies and functional-unit contention included). This is the
	// per-block contribution to the paper's CPI_cache.
	BaseCPI float64
	// Refs are the block's memory references in program order.
	Refs []Ref
	// Chains is the number of independent dependence chains the block's
	// demand misses divide into: the block's inherent memory-level
	// parallelism. 0 means fully independent (limited only by MSHRs);
	// 1 means a strict pointer-chase.
	Chains int
	// IOBytes is I/O traffic (DMA to memory) attributed to this block.
	IOBytes float64
	// IdleNS is time the thread spends idle after the block (blocked on
	// synchronization, network, or work starvation). It dilutes CPU
	// utilization but not CPI, matching how the paper's counters behave
	// (halted cycles do not dilute CPI, §V.J).
	IdleNS float64
}

// Reset clears a block for reuse, keeping ref capacity.
func (b *Block) Reset() {
	b.Instructions = 0
	b.BaseCPI = 0
	b.Refs = b.Refs[:0]
	b.Chains = 0
	b.IOBytes = 0
	b.IdleNS = 0
}

// AddRef appends a reference.
func (b *Block) AddRef(addr uint64, write bool) {
	b.Refs = append(b.Refs, Ref{Addr: addr, Write: write})
}

// AddNT appends a non-temporal store.
func (b *Block) AddNT(addr uint64) {
	b.Refs = append(b.Refs, Ref{Addr: addr, Write: true, NonTemporal: true})
}

// Generator is the source of a thread's instruction stream. NextBlock must
// fill dst (after resetting it) and is called forever; generators loop
// their data sets to provide steady-state behaviour.
type Generator interface {
	NextBlock(dst *Block)
}

// AddressSpace hands out disjoint synthetic address regions. The zero
// value starts allocating at a non-zero base so that address 0 never
// appears (it is a handy poison value in tests).
type AddressSpace struct {
	next uint64
}

const spaceBase = 1 << 20

// NewAddressSpace returns an AddressSpace that allocates from base
// upward. Threads use disjoint bases so their synthetic footprints do not
// alias in the shared memory simulator's channel/bank mapping.
func NewAddressSpace(base uint64) *AddressSpace {
	if base == 0 {
		base = spaceBase
	}
	return &AddressSpace{next: base}
}

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means 64) and returns the region base.
func (s *AddressSpace) Alloc(size uint64, align uint64) uint64 {
	if align == 0 {
		align = 64
	}
	if s.next == 0 {
		s.next = spaceBase
	}
	base := (s.next + align - 1) &^ (align - 1)
	s.next = base + size
	return base
}

// Region is a convenience wrapper: a base address and size with indexed
// element addressing.
type Region struct {
	Base uint64
	Size uint64
}

// AllocRegion reserves a region of size bytes.
func (s *AddressSpace) AllocRegion(size uint64) Region {
	return Region{Base: s.Alloc(size, 4096), Size: size}
}

// ElemAddr returns the address of element i of elemSize bytes, wrapping at
// the region end.
func (r Region) ElemAddr(i uint64, elemSize uint64) uint64 {
	if r.Size == 0 {
		return r.Base
	}
	off := (i * elemSize) % r.Size
	return r.Base + off
}

// Lines returns the number of cache lines in the region.
func (r Region) Lines(lineSize uint64) uint64 {
	if lineSize == 0 {
		lineSize = 64
	}
	return (r.Size + lineSize - 1) / lineSize
}
