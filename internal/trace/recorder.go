package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace recording and replay: capture a generator's block stream to a
// compact binary format once, then replay it on any machine
// configuration. This decouples workload generation from measurement the
// way real methodologies separate trace collection from trace-driven
// simulation, and makes cross-configuration comparisons use *literally*
// identical instruction streams.
//
// Format (little endian):
//
//	magic "MMTR" | version u16
//	per block:
//	  instructions uvarint | baseCPI f64 | chains uvarint |
//	  ioBytes f64 | idleNS f64 | nrefs uvarint |
//	  per ref: addr uvarint (delta-from-previous zig-zag) | flags u8
//
// A zero-instruction block terminates the stream (generators never emit
// one — the machine panics on them — so it is free as a sentinel).

const (
	traceMagic   = "MMTR"
	traceVersion = 1

	flagWrite       = 1 << 0
	flagNonTemporal = 1 << 1
	flagNoPrefetch  = 1 << 2
)

// ErrBadTrace reports a corrupt or incompatible trace stream.
var ErrBadTrace = errors.New("trace: bad or incompatible trace stream")

// Recorder wraps a Generator, copying every block it produces to w.
type Recorder struct {
	gen      Generator
	w        *bufio.Writer
	err      error
	prevAddr uint64
	started  bool
}

// NewRecorder starts a recording onto w. Close must be called to flush
// the terminator.
func NewRecorder(gen Generator, w io.Writer) (*Recorder, error) {
	if gen == nil {
		return nil, errors.New("trace: nil generator")
	}
	r := &Recorder{gen: gen, w: bufio.NewWriter(w)}
	if _, err := r.w.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], traceVersion)
	if _, err := r.w.Write(ver[:]); err != nil {
		return nil, err
	}
	return r, nil
}

// NextBlock implements Generator: it delegates and records.
func (r *Recorder) NextBlock(dst *Block) {
	r.gen.NextBlock(dst)
	if r.err != nil {
		return
	}
	r.err = r.writeBlock(dst)
}

// Err reports the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Close writes the stream terminator and flushes.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	// Terminator: a zero-instruction block.
	if err := writeUvarint(r.w, 0); err != nil {
		return err
	}
	return r.w.Flush()
}

func (r *Recorder) writeBlock(b *Block) error {
	if err := writeUvarint(r.w, b.Instructions); err != nil {
		return err
	}
	if err := writeF64(r.w, b.BaseCPI); err != nil {
		return err
	}
	if err := writeUvarint(r.w, uint64(b.Chains)); err != nil {
		return err
	}
	if err := writeF64(r.w, b.IOBytes); err != nil {
		return err
	}
	if err := writeF64(r.w, b.IdleNS); err != nil {
		return err
	}
	if err := writeUvarint(r.w, uint64(len(b.Refs))); err != nil {
		return err
	}
	for _, ref := range b.Refs {
		delta := int64(ref.Addr) - int64(r.prevAddr)
		r.prevAddr = ref.Addr
		if err := writeUvarint(r.w, zigzag(delta)); err != nil {
			return err
		}
		var flags byte
		if ref.Write {
			flags |= flagWrite
		}
		if ref.NonTemporal {
			flags |= flagNonTemporal
		}
		if ref.NoPrefetch {
			flags |= flagNoPrefetch
		}
		if err := r.w.WriteByte(flags); err != nil {
			return err
		}
	}
	return nil
}

// Replayer is a Generator that replays a recorded stream. When the
// stream ends it loops from the first recorded block (steady-state
// workloads record a representative window and cycle it).
type Replayer struct {
	blocks []Block
	pos    int
}

// NewReplayer parses a recorded stream fully into memory.
func NewReplayer(rd io.Reader) (*Replayer, error) {
	br := bufio.NewReader(rd)
	head := make([]byte, len(traceMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != traceVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadTrace, v)
	}

	var blocks []Block
	prevAddr := uint64(0)
	for {
		instr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated (%v)", ErrBadTrace, err)
		}
		if instr == 0 {
			break // terminator
		}
		var b Block
		b.Instructions = instr
		if b.BaseCPI, err = readF64(br); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		chains, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		b.Chains = int(chains)
		if b.IOBytes, err = readF64(br); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		if b.IdleNS, err = readF64(br); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		nrefs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		if nrefs > 1<<20 {
			return nil, fmt.Errorf("%w: implausible ref count %d", ErrBadTrace, nrefs)
		}
		b.Refs = make([]Ref, nrefs)
		for i := range b.Refs {
			zz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			addr := uint64(int64(prevAddr) + unzigzag(zz))
			prevAddr = addr
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			b.Refs[i] = Ref{
				Addr:        addr,
				Write:       flags&flagWrite != 0,
				NonTemporal: flags&flagNonTemporal != 0,
				NoPrefetch:  flags&flagNoPrefetch != 0,
			}
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return &Replayer{blocks: blocks}, nil
}

// Len reports the number of recorded blocks.
func (r *Replayer) Len() int { return len(r.blocks) }

// NextBlock implements Generator, looping over the recorded window.
func (r *Replayer) NextBlock(dst *Block) {
	src := &r.blocks[r.pos]
	r.pos = (r.pos + 1) % len(r.blocks)
	dst.Instructions = src.Instructions
	dst.BaseCPI = src.BaseCPI
	dst.Chains = src.Chains
	dst.IOBytes = src.IOBytes
	dst.IdleNS = src.IdleNS
	dst.Refs = append(dst.Refs[:0], src.Refs...)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeF64(w *bufio.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], mathFloat64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func readF64(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return mathFloat64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
