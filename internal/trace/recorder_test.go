package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// synthGen emits a deterministic mixed stream for round-trip tests.
type synthGen struct {
	rng *RNG
	i   int
}

func (g *synthGen) NextBlock(b *Block) {
	g.i++
	b.Instructions = uint64(400 + g.i%3*100)
	b.BaseCPI = 0.8 + float64(g.i%5)*0.1
	b.Chains = g.i % 4
	if g.i%7 == 0 {
		b.IOBytes = 4096
	}
	if g.i%11 == 0 {
		b.IdleNS = 250
	}
	n := g.rng.Intn(6)
	for j := 0; j < n; j++ {
		addr := g.rng.Uint64n(1<<40) + 64
		switch g.rng.Intn(4) {
		case 0:
			b.AddRef(addr, true)
		case 1:
			b.AddNT(addr)
		default:
			b.Refs = append(b.Refs, Ref{Addr: addr, NoPrefetch: g.rng.Bernoulli(0.2)})
		}
	}
}

func record(t *testing.T, n int, seed uint64) ([]Block, []byte) {
	t.Helper()
	gen := &synthGen{rng: NewRNG(seed)}
	var buf bytes.Buffer
	rec, err := NewRecorder(gen, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []Block
	var b Block
	for i := 0; i < n; i++ {
		b.Reset()
		rec.NextBlock(&b)
		cp := b
		cp.Refs = append([]Ref(nil), b.Refs...)
		want = append(want, cp)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	return want, buf.Bytes()
}

func TestRecordReplayRoundTrip(t *testing.T) {
	want, data := record(t, 200, 42)
	rep, err := NewReplayer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != len(want) {
		t.Fatalf("replay length = %d, want %d", rep.Len(), len(want))
	}
	var got Block
	for i, w := range want {
		got.Reset()
		rep.NextBlock(&got)
		if got.Instructions != w.Instructions || got.BaseCPI != w.BaseCPI ||
			got.Chains != w.Chains || got.IOBytes != w.IOBytes || got.IdleNS != w.IdleNS {
			t.Fatalf("block %d header mismatch: %+v vs %+v", i, got, w)
		}
		if len(got.Refs) != len(w.Refs) {
			t.Fatalf("block %d refs = %d, want %d", i, len(got.Refs), len(w.Refs))
		}
		for j := range w.Refs {
			if got.Refs[j] != w.Refs[j] {
				t.Fatalf("block %d ref %d = %+v, want %+v", i, j, got.Refs[j], w.Refs[j])
			}
		}
	}
}

func TestReplayerLoops(t *testing.T) {
	want, data := record(t, 5, 7)
	rep, err := NewReplayer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var b Block
	for i := 0; i < 12; i++ {
		b.Reset()
		rep.NextBlock(&b)
		if b.Instructions != want[i%5].Instructions {
			t.Fatalf("loop iteration %d did not wrap", i)
		}
	}
}

func TestReplayerRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX\x01\x00"),
		[]byte("MMTR\x09\x00"),     // wrong version
		[]byte("MMTR\x01\x00\x05"), // truncated block
		[]byte("MMTR\x01\x00\x00"), // empty trace (terminator only)
	}
	for i, data := range cases {
		if _, err := NewReplayer(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestRecorderNilGenerator(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewRecorder(nil, &buf); err == nil {
		t.Fatal("want error")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCompactness(t *testing.T) {
	// Delta-encoded addresses should keep the stream well under the
	// naive 17 bytes/ref (8 addr + 8 pad + flag).
	want, data := record(t, 1000, 99)
	refs := 0
	for _, b := range want {
		refs += len(b.Refs)
	}
	if refs == 0 {
		t.Fatal("no refs recorded")
	}
	perRef := float64(len(data)) / float64(refs)
	if perRef > 40 {
		t.Fatalf("trace too fat: %.1f bytes/ref", perRef)
	}
}
