package trace

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Workload generators must be reproducible run-to-run —
// the paper's methodology depends on "very little or no run-to-run
// variation in pathlength" (§V.B) — so every instance derives its stream
// from an explicit seed rather than global randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant; xorshift cannot leave the zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint64n returns a pseudo-random value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean,
// used for MLC-style open-loop arrival processes.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = 1 - 1e-12
	}
	// -mean * ln(1-u); ln via math would be fine but keep the dependency
	// local: use the math package.
	return -mean * ln(1-u)
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// s ≥ 0 (0 is uniform). It uses the inverse-power approximation
// floor(n * u^(1/(1-s))) for s in (0,1) and a two-level hot/cold split for
// s ≥ 1, which is accurate enough for cache-locality shaping and much
// cheaper than a full rejection sampler.
func (r *RNG) Zipf(n uint64, s float64) uint64 {
	if n == 0 {
		panic("trace: Zipf(0)")
	}
	switch {
	case s <= 0:
		return r.Uint64n(n)
	case s < 1:
		u := r.Float64()
		v := pow(u, 1/(1-s))
		i := uint64(v * float64(n))
		if i >= n {
			i = n - 1
		}
		return i
	default:
		// Hot/cold: 80% of draws to the hottest ~max(1, n/16) elements.
		hot := n / 16
		if hot == 0 {
			hot = 1
		}
		if r.Bernoulli(0.8) {
			return r.Uint64n(hot)
		}
		return r.Uint64n(n)
	}
}
