#!/usr/bin/env bash
# Full verification: vet, build, the tier-1 test suite, and the race
# detector over the concurrency-bearing packages (the simulator's event
# loop under the parallel fit grids, the engine scheduler, the
# experiment suite's shared caches and measurement cache, the fleet
# simulator, the memmodeld service layer, and the resilient client SDK).
#
# The race pass shrinks the golden-manifest drift test's scope via the
# `race` build tag (see internal/experiments/race_on_test.go) — the
# detector's slowdown makes two full -quick suite runs impractical.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (tier 1)"
go test ./...

echo "== go test -race (sim + cluster + engine + experiments + simcache + serve + client + workgen)"
go test -race -timeout 30m ./internal/sim/ ./internal/cluster/ ./internal/engine/ ./internal/experiments/ ./internal/simcache/ ./internal/serve/ ./client/ ./internal/workgen/

echo "verify: OK"
