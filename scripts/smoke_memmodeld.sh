#!/usr/bin/env bash
# End-to-end smoke of the memmodeld daemon: build it, start it, check
# /healthz, run one /v1/evaluate, one /v1/evaluate/topology, and one
# /v1/cluster/simulate, confirm the cache counter moved, then SIGTERM
# and assert the graceful drain exits cleanly (code 0).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${MEMMODELD_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
BIN="$TMP/memmodeld"
LOG="$TMP/memmodeld.log"
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -KILL "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build memmodeld"
go build -o "$BIN" ./cmd/memmodeld

echo "== start memmodeld on $ADDR"
"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!

echo "== wait for /healthz"
ok=""
for _ in $(seq 1 50); do
  if body="$(curl -fsS "$BASE/healthz" 2>/dev/null)"; then
    ok="$body"
    break
  fi
  kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup:"; cat "$LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$ok" ]] || { echo "daemon never became healthy:"; cat "$LOG"; exit 1; }
grep -q '"ok"' <<<"$ok" || { echo "unexpected /healthz body: $ok"; exit 1; }

echo "== POST /v1/evaluate"
eval_body="$(curl -fsS -X POST "$BASE/v1/evaluate" \
  -H 'Content-Type: application/json' \
  -d '{"params":{"class":"bigdata"},"platform":{}}')"
grep -q '"cpi"' <<<"$eval_body" || { echo "evaluate reply missing cpi: $eval_body"; exit 1; }

echo "== POST /v1/evaluate/topology"
topo_body="$(curl -fsS -X POST "$BASE/v1/evaluate/topology" \
  -H 'Content-Type: application/json' \
  -d '{"params":{"class":"bigdata"},"topology":{"tiers":[
        {"name":"near","share":0.8,"compulsory_ns":75,"peak_gbps":42},
        {"name":"far","share":0.2,"compulsory_ns":300,"peak_gbps":10,"efficiency":0.8}]}}')"
grep -q '"cpi"' <<<"$topo_body" || { echo "topology reply missing cpi: $topo_body"; exit 1; }
grep -q '"policy": *"fractions"' <<<"$topo_body" \
  || { echo "topology reply missing policy: $topo_body"; exit 1; }

echo "== POST /v1/cluster/simulate (reference fleet, one policy)"
cluster_body="$(curl -fsS -X POST "$BASE/v1/cluster/simulate" \
  -H 'Content-Type: application/json' \
  -d '{"duration_s":1,"policies":["weighted"]}')"
grep -q '"event_hash"' <<<"$cluster_body" \
  || { echo "cluster reply missing event_hash: $cluster_body"; exit 1; }
grep -q '"policy": *"weighted"' <<<"$cluster_body" \
  || { echo "cluster reply missing policy: $cluster_body"; exit 1; }

echo "== check /metrics counted all three solves"
metrics="$(curl -fsS "$BASE/metrics")"
grep -q '^memmodeld_cache_misses_total 3$' <<<"$metrics" \
  || { echo "metrics missing the cold solves:"; grep memmodeld_cache <<<"$metrics" || true; exit 1; }

echo "== SIGTERM and wait for graceful drain"
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
PID=""
if [[ "$rc" -ne 0 ]]; then
  echo "daemon exited with $rc, want 0:"
  cat "$LOG"
  exit 1
fi
grep -q 'final stats' "$LOG" || { echo "drain did not flush stats:"; cat "$LOG"; exit 1; }

echo "smoke: OK"
