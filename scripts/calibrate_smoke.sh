#!/usr/bin/env bash
# End-to-end calibration smoke: build memmodeld and memmodelctl, boot
# the daemon, dry-run the reference workload spec server-side
# (memmodelctl validate), then drive a short seeded load-generation run
# against it (memmodelctl loadgen) and assert the calibration report
# parses, carries the deterministic trace hash, and scores finite MAPEs.
# The accuracy gates themselves live in the loadgen-calibration
# experiment's test — a shared CI runner is too noisy to gate a live
# network run on a percentage.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${MEMMODELD_CAL_ADDR:-127.0.0.1:18082}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
DAEMON="$TMP/memmodeld"
CTL="$TMP/memmodelctl"
LOG="$TMP/memmodeld.log"
REPORT="$TMP/report.json"
VALIDATE="$TMP/validate.json"
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -KILL "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build memmodeld + memmodelctl"
go build -o "$DAEMON" ./cmd/memmodeld
go build -o "$CTL" ./cmd/memmodelctl

echo "== start memmodeld on $ADDR"
"$DAEMON" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!

echo "== wait for health"
up=""
for _ in $(seq 1 50); do
  if "$CTL" health -server "$BASE" -timeout 2s >/dev/null 2>&1; then
    up=yes
    break
  fi
  kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup:"; cat "$LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$up" ]] || { echo "daemon never became healthy:"; cat "$LOG"; exit 1; }

echo "== memmodelctl validate (server-side dry run of the reference spec)"
"$CTL" validate -server "$BASE" -timeout 15s -rps 100 -duration 2 >"$VALIDATE"
python3 - "$VALIDATE" <<'EOF'
import json, sys
v = json.load(open(sys.argv[1]))
assert len(v["trace_hash"]) == 16, v["trace_hash"]
assert v["arrivals"] > 0
assert v["clients"][0]["name"] == "total"
assert len(v["scenarios"]) == 6, len(v["scenarios"])
EOF

echo "== memmodelctl loadgen (5s seeded run, probe + replay + score)"
"$CTL" loadgen -server "$BASE" -timeout 60s -seed 42 -rps 100 -duration 5 -warmup 0.5 >"$REPORT"

echo "== check the calibration report"
python3 - "$REPORT" <<'EOF'
import json, math, sys
r = json.load(open(sys.argv[1]))
assert r["name"] == "workload", r["name"]
assert r["seed"] == 42, r["seed"]
assert len(r["trace_hash"]) == 16, r["trace_hash"]
assert r["arrivals"] > 300, r["arrivals"]
assert r["observed"][0]["name"] == "total"
assert r["observed"][0]["shed_rate"] == 0, r["observed"][0]
assert len(r["pairs"]) == 16, len(r["pairs"])
for key in ("mape_throughput", "mape_mean_latency", "mape_overall"):
    assert math.isfinite(r[key]), (key, r[key])
# Throughput is predicted from the realized trace; on a shed-free run
# it must match the observation almost exactly even on a noisy runner.
assert r["mape_throughput"] < 5, r["mape_throughput"]
EOF

echo "== same seed, same trace hash (determinism across processes)"
hash1="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["trace_hash"])' "$REPORT")"
hash2="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["trace_hash"])' "$VALIDATE")"
"$CTL" validate -server "$BASE" -timeout 15s -rps 100 -duration 5 -seed 42 >"$VALIDATE.2"
hash3="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["trace_hash"])' "$VALIDATE.2")"
# loadgen ran 5s/seed 42; the second validate dry-runs the same spec:
# the server must derive the identical schedule the client replayed.
if [[ "$hash1" != "$hash3" ]]; then
  echo "trace hash mismatch: loadgen $hash1 vs validate $hash3 (first validate: $hash2)"
  exit 1
fi

echo "== shutdown"
kill -TERM "$PID"
wait "$PID" || { echo "daemon exited non-zero:"; cat "$LOG"; exit 1; }
PID=""

echo "calibrate smoke: OK"
