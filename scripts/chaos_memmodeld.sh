#!/usr/bin/env bash
# Chaos end-to-end: boot memmodeld with the deterministic fault
# injector armed (~20% error-ish faults plus added latency), soak it
# with memmodelctl through the resilient client SDK, and require 100%
# eventual success within the per-call budget. Then confirm the daemon
# actually injected faults (the /metrics counters moved) and that it
# still drains cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${MEMMODELD_CHAOS_ADDR:-127.0.0.1:18081}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
DAEMON="$TMP/memmodeld"
CTL="$TMP/memmodelctl"
LOG="$TMP/memmodeld.log"
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -KILL "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build memmodeld + memmodelctl"
go build -o "$DAEMON" ./cmd/memmodeld
go build -o "$CTL" ./cmd/memmodelctl

echo "== start memmodeld with fault injection armed on $ADDR"
"$DAEMON" -addr "$ADDR" \
  -fault-seed 1234 \
  -fault-error-p 0.10 \
  -fault-unavailable-p 0.07 \
  -fault-drop-p 0.03 \
  -fault-latency-p 0.25 -fault-latency 5ms \
  >"$LOG" 2>&1 &
PID=$!

echo "== wait for health through the SDK"
"$CTL" health -server "$BASE" -timeout 15s \
  || { echo "daemon never became healthy:"; cat "$LOG"; exit 1; }
grep -q 'FAULT INJECTION ARMED' "$LOG" \
  || { echo "daemon did not arm fault injection:"; cat "$LOG"; exit 1; }

echo "== soak through the chaos wall (100% eventual success required)"
metrics_out="$TMP/client_metrics.txt"
"$CTL" soak -server "$BASE" -timeout 30s -max-attempts 10 \
  -backoff-base 5ms -backoff-cap 200ms -seed 42 \
  -n 120 -workers 4 >"$metrics_out" \
  || { echo "soak failed:"; cat "$LOG"; exit 1; }
grep -q '^memmodel_client_successes_total 120$' "$metrics_out" \
  || { echo "client metrics missing full success count:"; cat "$metrics_out"; exit 1; }

echo "== confirm the daemon injected faults"
metrics="$(curl -fsS "$BASE/metrics")"
for kind in latency error unavailable; do
  count="$(grep -o "memmodeld_faults_injected_total{kind=\"$kind\"} [0-9]*" <<<"$metrics" | awk '{print $2}')"
  [[ -n "$count" && "$count" -gt 0 ]] \
    || { echo "no $kind faults injected; chaos run was a no-op"; grep memmodeld_faults <<<"$metrics" || true; exit 1; }
done

echo "== SIGTERM and wait for graceful drain"
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
PID=""
if [[ "$rc" -ne 0 ]]; then
  echo "daemon exited with $rc, want 0:"
  cat "$LOG"
  exit 1
fi
grep -q 'faults injected' "$LOG" || { echo "final stats line missing fault counts:"; cat "$LOG"; exit 1; }

echo "chaos: OK"
