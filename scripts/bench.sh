#!/usr/bin/env bash
# Benchmark harness: runs the artifact benchmark suite (bench_test.go)
# with -benchmem and emits BENCH_repro.json recording op time and
# allocations for every benchmark, plus the measured speedup of the
# parallel fit grids + measurement cache over the pre-parallel baseline
# (REPRO_BENCH_BASELINE=1: one sim worker, no cache) on the fit-heavy
# artifacts Table 2 and Figure 3.
#
# Usage: scripts/bench.sh [smoke|full]
#   smoke  one iteration per benchmark and a short speedup pass (CI)
#   full   multi-iteration suite and speedup pass (default)
#
# Output: BENCH_repro.json (override with BENCH_OUT). No jq dependency:
# the JSON is assembled from `go test -bench` output with awk/printf.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="${BENCH_OUT:-BENCH_repro.json}"
CPU="${BENCH_CPU:-8}"
case "$MODE" in
smoke)
	SUITE_TIME=1x
	SPEEDUP_TIME=3x
	;;
full)
	SUITE_TIME=3x
	SPEEDUP_TIME=5x
	;;
*)
	echo "usage: scripts/bench.sh [smoke|full]" >&2
	exit 2
	;;
esac

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# parse turns `go test -bench` output into TSV:
# name<TAB>iterations<TAB>ns/op<TAB>B/op<TAB>allocs/op
parse() {
	awk '$1 ~ /^Benchmark/ {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			else if ($(i + 1) == "B/op") bytes = $i
			else if ($(i + 1) == "allocs/op") allocs = $i
		}
		print name "\t" $2 "\t" ns "\t" bytes "\t" allocs
	}' "$1"
}

echo "== suite: go test -bench . -benchmem -benchtime $SUITE_TIME -cpu $CPU"
go test -run '^$' -bench . -benchmem -benchtime "$SUITE_TIME" -cpu "$CPU" -timeout 45m . | tee "$TMP/suite.txt"

echo "== speedup: Table2|Figure3, parallel grids + measurement cache vs baseline"
go test -run '^$' -bench 'Table2|Figure3' -benchtime "$SPEEDUP_TIME" -cpu "$CPU" -timeout 45m . | tee "$TMP/par.txt"
REPRO_BENCH_BASELINE=1 go test -run '^$' -bench 'Table2|Figure3' -benchtime "$SPEEDUP_TIME" -cpu "$CPU" -timeout 45m . | tee "$TMP/base.txt"

parse "$TMP/suite.txt" >"$TMP/suite.tsv"
parse "$TMP/par.txt" >"$TMP/par.tsv"
parse "$TMP/base.txt" >"$TMP/base.tsv"

{
	printf '{\n'
	printf '  "mode": "%s",\n' "$MODE"
	printf '  "go": "%s",\n' "$(go version)"
	printf '  "cpu": %s,\n' "$CPU"
	printf '  "suite_benchtime": "%s",\n' "$SUITE_TIME"
	printf '  "benchmarks": [\n'
	first=1
	while IFS=$'\t' read -r name iters ns bytes allocs; do
		[ "$first" -eq 1 ] || printf ',\n'
		first=0
		printf '    {"name": "%s", "iterations": %s, "ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}' \
			"$name" "$iters" "${ns:-null}" "${bytes:-null}" "${allocs:-null}"
	done <"$TMP/suite.tsv"
	printf '\n  ],\n'
	printf '  "speedup": {\n'
	printf '    "baseline": "REPRO_BENCH_BASELINE=1 (one sim worker, no measurement cache)",\n'
	printf '    "benchtime": "%s",\n' "$SPEEDUP_TIME"
	printf '    "results": [\n'
	first=1
	while IFS=$'\t' read -r name iters ns bytes allocs; do
		base_ns="$(awk -F'\t' -v n="$name" '$1 == n { print $3 }' "$TMP/base.tsv")"
		[ -n "$base_ns" ] || continue
		sp="$(awk -v b="$base_ns" -v p="$ns" 'BEGIN { printf "%.2f", b / p }')"
		[ "$first" -eq 1 ] || printf ',\n'
		first=0
		printf '    {"name": "%s", "baseline_ns_per_op": %s, "ns_per_op": %s, "speedup": %s}' \
			"$name" "$base_ns" "$ns" "$sp"
	done <"$TMP/par.tsv"
	printf '\n    ]\n'
	printf '  }\n'
	printf '}\n'
} >"$OUT"

echo "== $OUT"
awk -F'"speedup": ' '/"speedup": [0-9]/ { print "speedup " $0 }' "$OUT" || true
echo "bench: wrote $OUT"
