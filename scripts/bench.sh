#!/usr/bin/env bash
# Benchmark harness: runs the artifact benchmark suite (bench_test.go)
# with -benchmem and emits BENCH_repro.json recording op time and
# allocations for every benchmark, plus the measured speedup of the
# parallel fit grids + measurement cache over the pre-parallel baseline
# (REPRO_BENCH_BASELINE=1: one sim worker, no measurement cache — the
# configuration before the parallel-grid PR) on the fit-heavy artifacts
# Table 2, Figure 3, Table 6 and Figure 6. To re-baseline after a perf
# change, rerun this script and commit the regenerated BENCH_repro.json;
# the baseline env is re-measured on every run, so speedups always
# compare like hardware against like.
#
# Usage: scripts/bench.sh [smoke|full]
#   smoke  one iteration per benchmark and a short speedup pass (CI)
#   full   multi-iteration suite and speedup pass (default)
#
# Env:
#   BENCH_OUT       output path (default BENCH_repro.json)
#   BENCH_CPU       -cpu value (default 8)
#   REPRO_PROFILE   when set, write <REPRO_PROFILE>_cpu.prof and
#                   <REPRO_PROFILE>_mem.prof from the suite pass
#
# The smoke mode also gates allocation regressions: the steady-state
# hot paths (CacheAccess, MemsysAccess) must stay at zero allocs/op and
# MachineSimulation under a fixed ceiling, so an accidental allocation
# on the measurement path fails CI instead of landing silently.
#
# Output: BENCH_repro.json (override with BENCH_OUT). No jq dependency:
# the JSON is assembled from `go test -bench` output with awk/printf.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="${BENCH_OUT:-BENCH_repro.json}"
CPU="${BENCH_CPU:-8}"
case "$MODE" in
smoke)
	SUITE_TIME=1x
	SPEEDUP_TIME=3x
	;;
full)
	SUITE_TIME=3x
	SPEEDUP_TIME=5x
	;;
*)
	echo "usage: scripts/bench.sh [smoke|full]" >&2
	exit 2
	;;
esac

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# parse turns `go test -bench` output into TSV:
# name<TAB>iterations<TAB>ns/op<TAB>B/op<TAB>allocs/op
parse() {
	awk '$1 ~ /^Benchmark/ {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			else if ($(i + 1) == "B/op") bytes = $i
			else if ($(i + 1) == "allocs/op") allocs = $i
		}
		print name "\t" $2 "\t" ns "\t" bytes "\t" allocs
	}' "$1"
}

PROFILE_ARGS=()
if [ -n "${REPRO_PROFILE:-}" ]; then
	PROFILE_ARGS=(-cpuprofile "${REPRO_PROFILE}_cpu.prof" -memprofile "${REPRO_PROFILE}_mem.prof")
	echo "== profiling suite pass to ${REPRO_PROFILE}_{cpu,mem}.prof"
fi

SPEEDUP_BENCH='Table2$|Figure3$|Table6$|Figure6$'

echo "== suite: go test -bench . -benchmem -benchtime $SUITE_TIME -cpu $CPU"
go test -run '^$' -bench . -benchmem -benchtime "$SUITE_TIME" -cpu "$CPU" -timeout 45m "${PROFILE_ARGS[@]}" . | tee "$TMP/suite.txt"

echo "== speedup: $SPEEDUP_BENCH, parallel grids + measurement cache vs baseline"
go test -run '^$' -bench "$SPEEDUP_BENCH" -benchtime "$SPEEDUP_TIME" -cpu "$CPU" -timeout 45m . | tee "$TMP/par.txt"
REPRO_BENCH_BASELINE=1 go test -run '^$' -bench "$SPEEDUP_BENCH" -benchtime "$SPEEDUP_TIME" -cpu "$CPU" -timeout 45m . | tee "$TMP/base.txt"

parse "$TMP/suite.txt" >"$TMP/suite.tsv"
parse "$TMP/par.txt" >"$TMP/par.tsv"
parse "$TMP/base.txt" >"$TMP/base.tsv"

# check_allocs fails the run when a benchmark's allocs/op exceeds its
# ceiling — the allocation-regression gate for the zero-alloc
# measurement path. Ceilings live here, next to the harness; raise one
# only with a justification in the commit that does it.
check_allocs() {
	local name="$1" ceiling="$2" got
	got="$(awk -F'\t' -v n="$name" '$1 == n { print $5; exit }' "$TMP/suite.tsv")"
	if [ -z "$got" ]; then
		echo "bench: alloc gate: benchmark $name missing from suite output" >&2
		exit 1
	fi
	if [ "$got" -gt "$ceiling" ]; then
		echo "bench: alloc gate: $name allocs/op $got > ceiling $ceiling" >&2
		exit 1
	fi
	echo "alloc gate ok: $name $got <= $ceiling"
}

# MachineSimulation measures ~103 allocs/op after the zero-alloc PR
# (per-Reset workload generators dominate; runtime thread allocations
# add ~50 at -cpu 8 on small boxes); 220 is ~1.5x headroom over the
# worst observed.
check_allocs CacheAccess 0
check_allocs MemsysAccess 0
check_allocs MachineSimulation 220

{
	printf '{\n'
	printf '  "mode": "%s",\n' "$MODE"
	printf '  "go": "%s",\n' "$(go version)"
	printf '  "cpu": %s,\n' "$CPU"
	printf '  "suite_benchtime": "%s",\n' "$SUITE_TIME"
	printf '  "benchmarks": [\n'
	first=1
	while IFS=$'\t' read -r name iters ns bytes allocs; do
		[ "$first" -eq 1 ] || printf ',\n'
		first=0
		printf '    {"name": "%s", "iterations": %s, "ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}' \
			"$name" "$iters" "${ns:-null}" "${bytes:-null}" "${allocs:-null}"
	done <"$TMP/suite.tsv"
	printf '\n  ],\n'
	printf '  "speedup": {\n'
	printf '    "baseline": "REPRO_BENCH_BASELINE=1 (one sim worker, no measurement cache)",\n'
	printf '    "benchtime": "%s",\n' "$SPEEDUP_TIME"
	printf '    "results": [\n'
	first=1
	while IFS=$'\t' read -r name iters ns bytes allocs; do
		base_ns="$(awk -F'\t' -v n="$name" '$1 == n { print $3 }' "$TMP/base.tsv")"
		[ -n "$base_ns" ] || continue
		sp="$(awk -v b="$base_ns" -v p="$ns" 'BEGIN { printf "%.2f", b / p }')"
		[ "$first" -eq 1 ] || printf ',\n'
		first=0
		printf '    {"name": "%s", "baseline_ns_per_op": %s, "ns_per_op": %s, "speedup": %s}' \
			"$name" "$base_ns" "$ns" "$sp"
	done <"$TMP/par.tsv"
	printf '\n    ]\n'
	printf '  }\n'
	printf '}\n'
} >"$OUT"

echo "== $OUT"
awk -F'"speedup": ' '/"speedup": [0-9]/ { print "speedup " $0 }' "$OUT" || true
echo "bench: wrote $OUT"
